package xmlparse

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"primelabel/internal/xmltree"
)

func mustParse(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	doc, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", s, err)
	}
	return doc
}

func TestParseSimple(t *testing.T) {
	doc := mustParse(t, `<book><title>Go</title><author>Pike</author></book>`)
	if doc.Root.Name != "book" || len(doc.Root.Children) != 2 {
		t.Fatalf("root = %s with %d children", doc.Root.Name, len(doc.Root.Children))
	}
	if doc.Root.Children[0].Text() != "Go" {
		t.Errorf("title text = %q", doc.Root.Children[0].Text())
	}
}

func TestParseAttributes(t *testing.T) {
	doc := mustParse(t, `<e a="1" b='two' c="x &amp; y"/>`)
	for _, want := range []struct{ k, v string }{{"a", "1"}, {"b", "two"}, {"c", "x & y"}} {
		if v, ok := doc.Root.Attr(want.k); !ok || v != want.v {
			t.Errorf("attr %s = %q,%v; want %q", want.k, v, ok, want.v)
		}
	}
}

func TestParseSelfClosingAndNesting(t *testing.T) {
	doc := mustParse(t, `<a><b/><c><d/></c></a>`)
	names := []string{}
	xmltree.WalkElements(doc.Root, func(n *xmltree.Node) bool {
		names = append(names, n.Name)
		return true
	})
	if got := strings.Join(names, ","); got != "a,b,c,d" {
		t.Errorf("structure = %s", got)
	}
}

func TestParseEntities(t *testing.T) {
	doc := mustParse(t, `<t>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</t>`)
	want := `<tag> & "q" 'a' AB`
	if got := doc.Root.Text(); got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
}

func TestParseCDATA(t *testing.T) {
	doc := mustParse(t, `<t><![CDATA[<not-a-tag> & raw]]></t>`)
	if got := doc.Root.Text(); got != "<not-a-tag> & raw" {
		t.Errorf("CDATA text = %q", got)
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	var comments, pis []string
	h := &recordingHandler{onComment: func(s string) { comments = append(comments, s) },
		onPI: func(target, data string) { pis = append(pis, target+"|"+data) }}
	src := `<?xml version="1.0"?><!-- top --><r><!-- in --><?php echo ?></r>`
	if err := Parse(strings.NewReader(src), h); err != nil {
		t.Fatal(err)
	}
	if len(comments) != 2 || comments[0] != " top " {
		t.Errorf("comments = %q", comments)
	}
	if len(pis) != 2 || pis[0] != "xml|version=\"1.0\"" {
		t.Errorf("PIs = %q", pis)
	}
}

type recordingHandler struct {
	BaseHandler
	onComment func(string)
	onPI      func(string, string)
}

func (h *recordingHandler) Comment(s string) error     { h.onComment(s); return nil }
func (h *recordingHandler) ProcInst(t, d string) error { h.onPI(t, d); return nil }

func TestParseDoctypeSkipped(t *testing.T) {
	src := `<!DOCTYPE play SYSTEM "play.dtd" [<!ENTITY x "y">]><play><act/></play>`
	doc := mustParse(t, src)
	if doc.Root.Name != "play" {
		t.Errorf("root = %s", doc.Root.Name)
	}
}

func TestParseWhitespaceHandling(t *testing.T) {
	src := "<a>\n  <b>hi</b>\n</a>"
	doc := mustParse(t, src)
	if len(doc.Root.Children) != 1 {
		t.Errorf("whitespace-only text should be dropped, got %d children", len(doc.Root.Children))
	}
	kept, err := ParseDocument(strings.NewReader(src), Options{KeepWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept.Root.Children) != 3 {
		t.Errorf("KeepWhitespace: got %d children, want 3", len(kept.Root.Children))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"mismatched tags", `<a><b></a></b>`},
		{"unclosed element", `<a><b>`},
		{"unexpected end tag", `</a>`},
		{"multiple roots", `<a/><b/>`},
		{"no root", `   `},
		{"text outside root", `hello<a/>`},
		{"duplicate attribute", `<a x="1" x="2"/>`},
		{"unquoted attribute", `<a x=1/>`},
		{"attr missing equals", `<a x"1"/>`},
		{"lt in attribute", `<a x="a<b"/>`},
		{"unknown entity", `<a>&nope;</a>`},
		{"bad char ref", `<a>&#xZZ;</a>`},
		{"unterminated entity", `<a>&amp</a>`},
		{"unterminated comment", `<a><!-- foo </a>`},
		{"double dash comment", `<a><!-- a -- b --></a>`},
		{"unterminated cdata", `<a><![CDATA[x</a>`},
		{"cdata outside root", `<![CDATA[x]]><a/>`},
		{"unterminated doctype", `<!DOCTYPE a [ <a/>`},
		{"bad name", `<1abc/>`},
		{"eof in tag", `<a `},
		{"bad end tag", `<a></a x>`},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: ParseString(%q) succeeded, want error", c.name, c.src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := ParseString("<a>\n<b></c>\n</a>")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
}

func TestRoundTripSample(t *testing.T) {
	src := `<catalog><book id="1"><title>A &amp; B</title></book><book id="2"/></catalog>`
	doc := mustParse(t, src)
	if got := doc.String(); got != src {
		t.Errorf("round trip:\n in  %s\n out %s", src, got)
	}
}

// randomDoc builds a random document for the round-trip property test.
func randomDoc(rng *rand.Rand) *xmltree.Document {
	names := []string{"a", "bb", "c-c", "d.e", "_f", "g1"}
	texts := []string{"hello", "x & y", "a<b", `"quoted"`, "tab\tdata", "é∂ƒ"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := xmltree.NewElement(names[rng.Intn(len(names))])
		for i := 0; i < rng.Intn(3); i++ {
			n.SetAttr(names[rng.Intn(len(names))], texts[rng.Intn(len(texts))])
		}
		kids := rng.Intn(4)
		if depth > 3 {
			kids = 0
		}
		for i := 0; i < kids; i++ {
			// Avoid adjacent text children: XML cannot represent the
			// boundary between them, so they merge on reparse.
			lastIsText := len(n.Children) > 0 && n.Children[len(n.Children)-1].Kind == xmltree.TextNode
			if rng.Intn(3) == 0 && !lastIsText {
				_ = n.AppendChild(xmltree.NewText(texts[rng.Intn(len(texts))]))
			} else {
				_ = n.AppendChild(build(depth + 1))
			}
		}
		return n
	}
	return xmltree.NewDocument(build(0))
}

func TestPropertyRoundTrip(t *testing.T) {
	// parse(serialize(tree)) must reproduce the tree exactly.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		doc := randomDoc(rng)
		out := doc.String()
		back, err := ParseDocument(strings.NewReader(out), Options{KeepWhitespace: true})
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\nxml: %s", trial, err, out)
		}
		if !xmltree.Equal(doc.Root, back.Root) {
			t.Fatalf("trial %d: round trip mismatch\n in  %s\n out %s", trial, out, back.String())
		}
	}
}

func TestParseDeeplyNested(t *testing.T) {
	var b strings.Builder
	const depth = 2000
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	doc := mustParse(t, b.String())
	st := xmltree.ComputeStats(doc)
	if st.Nodes != depth || st.MaxDepth != depth-1 {
		t.Errorf("nodes=%d depth=%d", st.Nodes, st.MaxDepth)
	}
}

func TestParseLargeFanout(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 10000; i++ {
		b.WriteString("<c/>")
	}
	b.WriteString("</r>")
	doc := mustParse(t, b.String())
	st := xmltree.ComputeStats(doc)
	if st.MaxFan != 10000 {
		t.Errorf("fanout = %d", st.MaxFan)
	}
}

func TestTextMerging(t *testing.T) {
	doc := mustParse(t, `<t>a&amp;b<![CDATA[c]]>d</t>`)
	if len(doc.Root.Children) != 1 {
		t.Fatalf("adjacent text not merged: %d children", len(doc.Root.Children))
	}
	if doc.Root.Text() != "a&bcd" {
		t.Errorf("text = %q", doc.Root.Text())
	}
}

// synthReader produces a large document incrementally, without ever holding
// it in memory — the lexer must parse straight off the stream.
type synthReader struct {
	pre, post string
	items     int
	state     int // 0=pre, 1=items, 2=post, 3=done
	emitted   int
	partial   string
}

func (s *synthReader) Read(p []byte) (int, error) {
	for {
		if s.partial != "" {
			n := copy(p, s.partial)
			s.partial = s.partial[n:]
			return n, nil
		}
		switch s.state {
		case 0:
			s.partial = s.pre
			s.state = 1
		case 1:
			if s.emitted >= s.items {
				s.state = 2
				continue
			}
			s.emitted++
			s.partial = `<item n="` + strings.Repeat("x", s.emitted%50) + `">value &amp; more</item>`
		case 2:
			s.partial = s.post
			s.state = 3
		default:
			return 0, io.EOF
		}
	}
}

func TestParseFromUnbufferedStream(t *testing.T) {
	src := &synthReader{pre: "<feed>", post: "</feed>", items: 20000}
	count := 0
	h := &countingHandler{count: &count}
	if err := Parse(src, h); err != nil {
		t.Fatal(err)
	}
	if count != 20001 {
		t.Errorf("streamed %d elements, want 20001", count)
	}
}

type countingHandler struct {
	BaseHandler
	count *int
}

func (h *countingHandler) StartElement(string, []xmltree.Attr) error {
	*h.count++
	return nil
}

// Markup tokens crossing the 4 KiB buffer boundary must still tokenize:
// pad with text so a comment and a CDATA straddle the boundary.
func TestParseTokensAcrossBufferBoundary(t *testing.T) {
	for _, pad := range []int{4090, 4091, 4092, 4093, 4094, 4095, 4096} {
		src := "<a>" + strings.Repeat("t", pad) + "<!-- comment -->" +
			strings.Repeat("u", 4090) + "<![CDATA[cd]]>" + "</a>"
		doc, err := ParseString(src)
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		if !strings.Contains(doc.Root.Text(), "cd") {
			t.Fatalf("pad %d: CDATA lost", pad)
		}
	}
}

// A huge attribute value (larger than the reader's buffer) must survive.
func TestParseHugeAttribute(t *testing.T) {
	val := strings.Repeat("v", 100000)
	doc, err := ParseString(`<a x="` + val + `"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := doc.Root.Attr("x"); got != val {
		t.Errorf("attribute truncated: %d bytes", len(got))
	}
}
