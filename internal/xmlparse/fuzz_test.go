package xmlparse

import (
	"strings"
	"testing"

	"primelabel/internal/xmltree"
)

// FuzzParse checks that the parser never panics and that every document it
// accepts round-trips losslessly through our own serializer.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a><b>text</b><c x="1"/></a>`,
		`<?xml version="1.0"?><!DOCTYPE a [<!ENTITY x "y">]><a><!-- c --><![CDATA[<raw>]]></a>`,
		`<a>&amp;&lt;&gt;&#65;&#x42;</a>`,
		`<a b='1' c="2"><d/><d/></a>`,
		`<a><b></a>`,
		`<a x="1" x="2"/>`,
		`&bogus;<a/>`,
		`<a>` + strings.Repeat("<b>", 50) + strings.Repeat("</b>", 50) + `</a>`,
		"",
		"<",
		"<a ",
		"<a><![CDATA[",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseDocument(strings.NewReader(src), Options{KeepWhitespace: true})
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := doc.String()
		back, err := ParseDocument(strings.NewReader(out), Options{KeepWhitespace: true})
		if err != nil {
			t.Fatalf("accepted %q, serialized to %q, which does not reparse: %v", src, out, err)
		}
		if !equalModuloTextMerge(doc.Root, back.Root) {
			t.Fatalf("round trip changed structure:\n in  %q\n xml %q\n out %q", src, out, back.String())
		}
	})
}

// equalModuloTextMerge compares trees, tolerating the one lossy XML
// artifact: adjacent text nodes merge on reparse.
func equalModuloTextMerge(a, b *xmltree.Node) bool {
	return normText(a) == normText(b)
}

// normText renders a canonical form with merged text.
func normText(n *xmltree.Node) string {
	var sb strings.Builder
	var walk func(m *xmltree.Node)
	walk = func(m *xmltree.Node) {
		if m.Kind == xmltree.TextNode {
			sb.WriteString("T(")
			sb.WriteString(m.Data)
			sb.WriteString(")")
			return
		}
		sb.WriteString("<" + m.Name)
		for _, a := range m.Attrs {
			sb.WriteString(" " + a.Name + "=" + a.Value)
		}
		sb.WriteString(">")
		lastText := false
		for _, c := range m.Children {
			if c.Kind == xmltree.TextNode {
				if lastText {
					// merge representation: strip the boundary
					s := sb.String()
					sb.Reset()
					sb.WriteString(strings.TrimSuffix(s, ")"))
					sb.WriteString(c.Data + ")")
					continue
				}
				lastText = true
			} else {
				lastText = false
			}
			walk(c)
		}
		sb.WriteString("</" + m.Name + ">")
	}
	walk(n)
	return sb.String()
}
