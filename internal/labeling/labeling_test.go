package labeling_test

import (
	"strings"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/labeling/interval"
	"primelabel/internal/labeling/prime"
	"primelabel/internal/xmltree"
)

func sampleDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	r := xmltree.NewElement("r")
	a := xmltree.NewElement("a")
	b := xmltree.NewElement("b")
	if err := r.AppendChild(a); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendChild(b); err != nil {
		t.Fatal(err)
	}
	return xmltree.NewDocument(r)
}

func TestCheckAgainstTreePasses(t *testing.T) {
	doc := sampleDoc(t)
	l, err := (prime.Scheme{}).Label(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Error(err)
	}
}

// brokenLabeling wraps a good labeling but lies about one pair.
type brokenLabeling struct {
	labeling.Labeling
	a, b *xmltree.Node
}

func (bl brokenLabeling) IsAncestor(a, b *xmltree.Node) bool {
	if a == bl.a && b == bl.b {
		return !bl.Labeling.IsAncestor(a, b)
	}
	return bl.Labeling.IsAncestor(a, b)
}

func TestCheckAgainstTreeDetectsLies(t *testing.T) {
	doc := sampleDoc(t)
	l, err := (prime.Scheme{}).Label(doc)
	if err != nil {
		t.Fatal(err)
	}
	els := xmltree.Elements(doc.Root)
	bad := brokenLabeling{Labeling: l, a: els[1], b: els[2]}
	err = labeling.CheckAgainstTree(bad)
	if err == nil {
		t.Fatal("lying labeling passed the check")
	}
	var mm *labeling.MismatchError
	if ok := errorsAs(err, &mm); !ok {
		t.Fatalf("error type %T, want *MismatchError", err)
	}
	if !strings.Contains(err.Error(), "IsAncestor") {
		t.Errorf("error message uninformative: %v", err)
	}
}

func errorsAs(err error, target **labeling.MismatchError) bool {
	m, ok := err.(*labeling.MismatchError)
	if ok {
		*target = m
	}
	return ok
}

func TestTotalLabelBits(t *testing.T) {
	doc := sampleDoc(t)
	l, err := (interval.Scheme{Variant: interval.XRel}).Label(doc)
	if err != nil {
		t.Fatal(err)
	}
	total := labeling.TotalLabelBits(l)
	// Three elements, fixed-length labels.
	if total != 3*l.MaxLabelBits() {
		t.Errorf("TotalLabelBits = %d, want %d", total, 3*l.MaxLabelBits())
	}
}

// Every scheme must advertise a non-empty, stable name.
func TestSchemeNamesStable(t *testing.T) {
	schemes := []labeling.Scheme{
		prime.Scheme{},
		prime.Scheme{Opts: prime.Options{ReservedPrimes: 4, PowerOfTwoLeaves: true}},
		prime.BottomUpScheme{},
		prime.DecomposedScheme{},
		interval.Scheme{Variant: interval.XISS},
		interval.Scheme{Variant: interval.XRel},
	}
	seen := map[string]bool{}
	for _, s := range schemes {
		name := s.Name()
		if name == "" {
			t.Error("empty scheme name")
		}
		if seen[name] {
			t.Errorf("duplicate scheme name %q", name)
		}
		seen[name] = true
		doc := sampleDoc(t)
		l, err := s.Label(doc)
		if err != nil {
			t.Fatal(err)
		}
		if l.SchemeName() != name {
			t.Errorf("labeling name %q != scheme name %q", l.SchemeName(), name)
		}
	}
}
