package prefix

import (
	"math/rand"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

func buildTree(t *testing.T) (*xmltree.Document, map[string]*xmltree.Node) {
	t.Helper()
	r := xmltree.NewElement("r")
	a := xmltree.NewElement("a")
	b := xmltree.NewElement("b")
	c := xmltree.NewElement("c")
	d := xmltree.NewElement("d")
	for _, s := range []struct{ p, c *xmltree.Node }{{r, a}, {r, b}, {a, c}, {a, d}} {
		if err := s.p.AppendChild(s.c); err != nil {
			t.Fatal(err)
		}
	}
	return xmltree.NewDocument(r), map[string]*xmltree.Node{"r": r, "a": a, "b": b, "c": c, "d": d}
}

func randomTree(rng *rand.Rand, n int) *xmltree.Document {
	root := xmltree.NewElement("root")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := xmltree.NewElement("e")
		_ = p.AppendChild(c)
		nodes = append(nodes, c)
	}
	return xmltree.NewDocument(root)
}

func allSchemes() []labeling.Scheme {
	return []labeling.Scheme{
		Scheme{Variant: Prefix1},
		Scheme{Variant: Prefix2},
		Scheme{Variant: Prefix1, OrderPreserving: true},
		Scheme{Variant: Prefix2, OrderPreserving: true},
		DeweyScheme{},
	}
}

// The paper's Prefix-2 description: sibling codes 0, 10, 1100, 1101, 1110,
// 11110000.
func TestPrefix2SiblingCodes(t *testing.T) {
	s := Scheme{Variant: Prefix2}
	want := []string{"0", "10", "1100", "1101", "1110", "11110000", "11110001"}
	code := Bits{}
	for i, w := range want {
		code = s.nextSibCode(code)
		if code.String() != w {
			t.Fatalf("code %d = %s, want %s", i, code, w)
		}
	}
}

// Prefix-1 codes the i-th child as 1^(i-1)0.
func TestPrefix1SiblingCodes(t *testing.T) {
	s := Scheme{Variant: Prefix1}
	want := []string{"0", "10", "110", "1110"}
	code := Bits{}
	for i, w := range want {
		code = s.nextSibCode(code)
		if code.String() != w {
			t.Fatalf("code %d = %s, want %s", i, code, w)
		}
	}
}

func TestBitsOperations(t *testing.T) {
	b := BitsFromString("1011")
	if b.Len() != 4 || b.String() != "1011" {
		t.Fatalf("Bits = %s len %d", b, b.Len())
	}
	if b.Bit(0) != 1 || b.Bit(1) != 0 {
		t.Error("Bit() wrong")
	}
	c := b.Append(BitsFromString("01"))
	if c.String() != "101101" {
		t.Errorf("Append = %s", c)
	}
	if b.String() != "1011" {
		t.Error("Append mutated receiver")
	}
	if !c.HasPrefix(b) || b.HasPrefix(c) {
		t.Error("HasPrefix wrong")
	}
	if !b.Equal(BitsFromString("1011")) || b.Equal(c) {
		t.Error("Equal wrong")
	}
	if got := BitsFromString("110").increment(); !got.Equal(BitsFromString("111")) {
		t.Errorf("increment(110) = %s, want 111", got)
	}
	if got := BitsFromString("1011").increment(); !got.Equal(BitsFromString("1100")) {
		t.Errorf("increment(1011) = %s, want 1100", got)
	}
	if !BitsFromString("111").allOnes() || BitsFromString("1101").allOnes() || (Bits{}).allOnes() {
		t.Error("allOnes wrong")
	}
}

func TestBitsCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"0", "10", -1}, {"10", "1100", -1}, {"1101", "1110", -1},
		{"0", "0", 0}, {"10", "100", -1}, {"100", "10", 1},
	}
	for _, c := range cases {
		if got := BitsFromString(c.a).Compare(BitsFromString(c.b)); got != c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAgainstTreeAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, s := range allSchemes() {
		for trial := 0; trial < 10; trial++ {
			doc := randomTree(rng, 70)
			l, err := s.Label(doc)
			if err != nil {
				t.Fatal(err)
			}
			if err := labeling.CheckAgainstTree(l); err != nil {
				t.Fatalf("%s trial %d: %v", s.Name(), trial, err)
			}
		}
	}
}

func TestIsParentAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, s := range allSchemes() {
		doc := randomTree(rng, 50)
		l, err := s.Label(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range xmltree.Elements(doc.Root) {
			for _, b := range xmltree.Elements(doc.Root) {
				want := b.Parent == a
				if got := l.IsParent(a, b); got != want {
					t.Fatalf("%s: IsParent(%s,%s)=%v want %v", s.Name(),
						xmltree.PathTo(a), xmltree.PathTo(b), got, want)
				}
			}
		}
	}
}

func TestBeforeMatchesDocOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	ordered := []labeling.Scheme{
		Scheme{Variant: Prefix1, OrderPreserving: true},
		Scheme{Variant: Prefix2, OrderPreserving: true},
		DeweyScheme{},
	}
	for _, s := range ordered {
		doc := randomTree(rng, 60)
		l, err := s.Label(doc)
		if err != nil {
			t.Fatal(err)
		}
		idx := xmltree.DocOrderIndex(doc)
		els := xmltree.Elements(doc.Root)
		for _, a := range els {
			for _, b := range els {
				got, err := l.Before(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if want := idx[a] < idx[b]; got != want {
					t.Fatalf("%s: Before(%s,%s) = %v, want %v", s.Name(),
						xmltree.PathTo(a), xmltree.PathTo(b), got, want)
				}
			}
		}
	}
}

func TestBeforeUnsupportedWhenUnordered(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := (Scheme{Variant: Prefix2}).New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Before(ns["a"], ns["b"]); err != labeling.ErrOrderUnsupported {
		t.Errorf("Before err = %v, want ErrOrderUnsupported", err)
	}
}

// Figure 16: an (unordered) insert costs exactly one label.
func TestUnorderedInsertCostsOne(t *testing.T) {
	for _, v := range []Variant{Prefix1, Prefix2} {
		doc, ns := buildTree(t)
		l, err := (Scheme{Variant: v}).New(doc)
		if err != nil {
			t.Fatal(err)
		}
		count, err := l.InsertChildAt(ns["a"], 0, xmltree.NewElement("new"))
		if err != nil {
			t.Fatal(err)
		}
		if count != 1 {
			t.Errorf("%v unordered insert count = %d, want 1", v, count)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatal(err)
		}
	}
}

// Figure 18: an order-preserving insert between siblings relabels all
// following siblings and their subtrees.
func TestOrderedInsertRelabelsFollowers(t *testing.T) {
	root := xmltree.NewElement("r")
	var subtreeSizes int
	for i := 0; i < 5; i++ {
		act := xmltree.NewElement("act")
		_ = root.AppendChild(act)
		for j := 0; j < 10; j++ {
			_ = act.AppendChild(xmltree.NewElement("scene"))
		}
		if i >= 1 { // acts after the insertion point (index 1)
			subtreeSizes += 11
		}
	}
	doc := xmltree.NewDocument(root)
	l, err := (Scheme{Variant: Prefix2, OrderPreserving: true}).New(doc)
	if err != nil {
		t.Fatal(err)
	}
	count, err := l.InsertChildAt(root, 1, xmltree.NewElement("act"))
	if err != nil {
		t.Fatal(err)
	}
	// The new act + 4 following acts × (1 + 10 scenes).
	want := 1 + subtreeSizes
	if count != want {
		t.Errorf("ordered insert count = %d, want %d", count, want)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
	// Order must be preserved.
	idx := xmltree.DocOrderIndex(doc)
	els := xmltree.Elements(doc.Root)
	for _, a := range els {
		for _, b := range els {
			got, err := l.Before(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if want := idx[a] < idx[b]; got != want {
				t.Fatal("order broken after insert")
			}
		}
	}
}

func TestDeweyLabels(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := DeweyScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"r": "", "a": "1", "b": "2", "c": "1.1", "d": "1.2"}
	for name, w := range want {
		got, ok := l.DeweyOf(ns[name])
		if !ok || got != w {
			t.Errorf("DeweyOf(%s) = %q,%v; want %q", name, got, ok, w)
		}
	}
}

func TestDeweyInsertRenumbersFollowers(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := DeweyScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Insert before c: d shifts from 1.2 to 1.3.
	count, err := l.InsertChildAt(ns["a"], 0, xmltree.NewElement("new"))
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 { // new + c + d
		t.Errorf("count = %d, want 3", count)
	}
	if got, _ := l.DeweyOf(ns["d"]); got != "1.3" {
		t.Errorf("d = %q, want 1.3", got)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
}

func TestWrapNodeAllSchemes(t *testing.T) {
	for _, s := range allSchemes() {
		doc, ns := buildTree(t)
		l, err := s.Label(doc)
		if err != nil {
			t.Fatal(err)
		}
		w := xmltree.NewElement("w")
		count, err := l.WrapNode(ns["a"], w)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if count < 4 { // wrapper + a + c + d at minimum
			t.Errorf("%s: wrap count = %d, want >= 4", s.Name(), count)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if _, err := l.WrapNode(doc.Root, xmltree.NewElement("x")); err != xmltree.ErrIsRoot {
			t.Errorf("%s: wrap root err = %v", s.Name(), err)
		}
	}
}

func TestDeleteAllSchemes(t *testing.T) {
	for _, s := range allSchemes() {
		doc, ns := buildTree(t)
		l, err := s.Label(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Delete(ns["a"]); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if l.LabelBits(ns["c"]) != 0 {
			t.Errorf("%s: deleted node still labeled", s.Name())
		}
		if err := l.Delete(doc.Root); err != xmltree.ErrIsRoot {
			t.Errorf("%s: delete root err = %v", s.Name(), err)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// Equation 1 vs Equation 2: on a wide flat tree Prefix-1 labels grow
// linearly with fan-out while Prefix-2 stays logarithmic ×4.
func TestPrefix2BeatsPrefix1OnWideTrees(t *testing.T) {
	root := xmltree.NewElement("r")
	for i := 0; i < 200; i++ {
		_ = root.AppendChild(xmltree.NewElement("c"))
	}
	doc := xmltree.NewDocument(root)
	l1, err := (Scheme{Variant: Prefix1}).New(doc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := (Scheme{Variant: Prefix2}).New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if l1.MaxLabelBits() != 200 {
		t.Errorf("Prefix-1 max bits = %d, want 200 (D·F)", l1.MaxLabelBits())
	}
	if l2.MaxLabelBits() >= l1.MaxLabelBits()/4 {
		t.Errorf("Prefix-2 max bits = %d, not far below Prefix-1's %d", l2.MaxLabelBits(), l1.MaxLabelBits())
	}
}

func TestPropertyDynamicMix(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, s := range allSchemes() {
		doc := randomTree(rng, 15)
		l, err := s.Label(doc)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 60; step++ {
			els := xmltree.Elements(doc.Root)
			switch op := rng.Intn(10); {
			case op < 6:
				p := els[rng.Intn(len(els))]
				if _, err := l.InsertChildAt(p, rng.Intn(len(p.ElementChildren())+1), xmltree.NewElement("n")); err != nil {
					t.Fatalf("%s step %d insert: %v", s.Name(), step, err)
				}
			case op < 8:
				tgt := els[rng.Intn(len(els))]
				if tgt == doc.Root {
					continue
				}
				if _, err := l.WrapNode(tgt, xmltree.NewElement("w")); err != nil {
					t.Fatalf("%s step %d wrap: %v", s.Name(), step, err)
				}
			default:
				if len(els) < 5 {
					continue
				}
				v := els[rng.Intn(len(els))]
				if v == doc.Root {
					continue
				}
				if err := l.Delete(v); err != nil {
					t.Fatalf("%s step %d delete: %v", s.Name(), step, err)
				}
			}
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestNamesAndAccessors(t *testing.T) {
	if (Scheme{Variant: Prefix1}).Name() != "prefix-1" ||
		(Scheme{Variant: Prefix2}).Name() != "prefix-2" ||
		(Scheme{Variant: Prefix2, OrderPreserving: true}).Name() != "prefix-2+ordered" ||
		(DeweyScheme{}).Name() != "dewey" {
		t.Error("scheme names wrong")
	}
	if Prefix1.String() != "prefix-1" || Prefix2.String() != "prefix-2" || Variant(9).String() == "" {
		t.Error("variant strings wrong")
	}
	doc, ns := buildTree(t)
	l, err := (Scheme{Variant: Prefix2}).New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if l.SchemeName() != "prefix-2" || l.Doc() != doc {
		t.Error("labeling accessors wrong")
	}
	bits, ok := l.BitsOf(ns["a"])
	if !ok || bits.Len() == 0 {
		t.Error("BitsOf missing")
	}
	if _, ok := l.BitsOf(xmltree.NewElement("ghost")); ok {
		t.Error("BitsOf of ghost node")
	}
}

func TestDeweyAccessorsAndBits(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := DeweyScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if l.SchemeName() != "dewey" || l.Doc() != doc {
		t.Error("dewey accessors wrong")
	}
	// Root's empty label still costs one slot; children cost component
	// bits plus delimiters.
	if l.LabelBits(ns["r"]) != 1 {
		t.Errorf("root bits = %d", l.LabelBits(ns["r"]))
	}
	if l.LabelBits(xmltree.NewElement("ghost")) != 0 {
		t.Error("ghost bits")
	}
	if l.MaxLabelBits() < l.LabelBits(ns["c"]) {
		t.Error("MaxLabelBits below a node's bits")
	}
	if _, ok := l.DeweyOf(xmltree.NewElement("ghost")); ok {
		t.Error("DeweyOf ghost")
	}
}

func TestDeweyInsertValidation(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := DeweyScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.InsertChildAt(ns["a"], 0, nil); err == nil {
		t.Error("nil insert should fail")
	}
	if _, err := l.InsertChildAt(ns["a"], 0, xmltree.NewText("t")); err == nil {
		t.Error("text insert should fail")
	}
	withKids := xmltree.NewElement("p")
	_ = withKids.AppendChild(xmltree.NewElement("q"))
	if _, err := l.InsertChildAt(ns["a"], 0, withKids); err == nil {
		t.Error("non-childless insert should fail")
	}
	if _, err := l.InsertChildAt(ns["a"], 0, ns["b"].Detach()); err == nil {
		t.Error("labeled node insert should fail")
	}
	if _, err := l.InsertChildAt(xmltree.NewElement("out"), 0, xmltree.NewElement("n")); err == nil {
		t.Error("unlabeled parent should fail")
	}
	if _, err := l.WrapNode(ns["c"], ns["d"].Detach()); err == nil {
		t.Error("wrap with labeled wrapper should fail")
	}
}

func TestPrefixInsertValidation(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := (Scheme{Variant: Prefix2}).New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.InsertChildAt(ns["a"], 0, nil); err == nil {
		t.Error("nil insert should fail")
	}
	if _, err := l.InsertChildAt(ns["a"], 0, xmltree.NewText("t")); err == nil {
		t.Error("text insert should fail")
	}
	attached := ns["c"]
	if _, err := l.InsertChildAt(ns["a"], 0, attached); err == nil {
		t.Error("attached node insert should fail")
	}
	withKids := xmltree.NewElement("p")
	_ = withKids.AppendChild(xmltree.NewElement("q"))
	if _, err := l.InsertChildAt(ns["a"], 0, withKids); err == nil {
		t.Error("non-childless insert should fail")
	}
}
