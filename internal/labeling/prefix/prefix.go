package prefix

import (
	"errors"
	"fmt"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

// Variant selects the sibling-code generator.
type Variant int

const (
	// Prefix1 codes the i-th child as "1^(i-1)0": simple but linear in the
	// fan-out (Equation 1: Lmax = D·F).
	Prefix1 Variant = iota
	// Prefix2 uses the Cohen/Kaplan/Milo incremental binary codes
	// 0, 10, 1100, 1101, 1110, 11110000, … whose length is 4·log F
	// (Equation 2: Lmax = D·4·log F).
	Prefix2
)

func (v Variant) String() string {
	switch v {
	case Prefix1:
		return "prefix-1"
	case Prefix2:
		return "prefix-2"
	default:
		return fmt.Sprintf("prefix(%d)", int(v))
	}
}

// Scheme labels documents with prefix labels.
type Scheme struct {
	Variant Variant
	// OrderPreserving keeps sibling codes in document order so the labels
	// answer order queries (required for the Section 5.4 experiment). An
	// ordered insertion between siblings then renumbers all following
	// siblings and their subtrees. When false, inserted nodes simply take
	// the next unused sibling code (count 1) and Before is unsupported.
	OrderPreserving bool
}

// Name implements labeling.Scheme.
func (s Scheme) Name() string {
	n := s.Variant.String()
	if s.OrderPreserving {
		n += "+ordered"
	}
	return n
}

// nextSibCode returns the sibling code following prev (the zero Bits for
// the first child).
func (s Scheme) nextSibCode(prev Bits) Bits {
	switch s.Variant {
	case Prefix1:
		// prev = 1^(i-1)0 → next = 1^i 0: flip the trailing 0 to 1, append 0.
		if prev.Len() == 0 {
			return BitsFromString("0")
		}
		out := Bits{}
		for i := 0; i < prev.Len()-1; i++ {
			out = out.AppendBit(1)
		}
		out = out.AppendBit(1)
		return out.AppendBit(0)
	default: // Prefix2
		if prev.Len() == 0 {
			return BitsFromString("0")
		}
		next := prev.incrementOrExtend()
		return next
	}
}

type pfxLabel struct {
	label Bits // full label: parent label + sibling code
	code  Bits // this node's own sibling code
}

// Labeling is a prefix-labeled document.
type Labeling struct {
	doc    *xmltree.Document
	scheme Scheme
	labels map[*xmltree.Node]*pfxLabel
	// lastCode tracks the last issued sibling code per parent so appends
	// and unordered inserts can continue the sequence.
	lastCode map[*xmltree.Node]Bits
}

var _ labeling.Labeling = (*Labeling)(nil)

// Label implements labeling.Scheme.
func (s Scheme) Label(doc *xmltree.Document) (labeling.Labeling, error) {
	l, err := s.New(doc)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// New labels doc and returns the concrete labeling.
func (s Scheme) New(doc *xmltree.Document) (*Labeling, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("prefix: nil document")
	}
	l := &Labeling{
		doc:      doc,
		scheme:   s,
		labels:   make(map[*xmltree.Node]*pfxLabel),
		lastCode: make(map[*xmltree.Node]Bits),
	}
	l.labels[doc.Root] = &pfxLabel{}
	l.labelChildren(doc.Root)
	return l, nil
}

// labelChildren assigns sibling codes to all element children of n (whose
// own label must already be set) and recurses.
func (l *Labeling) labelChildren(n *xmltree.Node) {
	parentLabel := l.labels[n].label
	prev := Bits{}
	for _, c := range n.Children {
		if c.Kind != xmltree.ElementNode {
			continue
		}
		code := l.scheme.nextSibCode(prev)
		l.labels[c] = &pfxLabel{label: parentLabel.Append(code), code: code}
		prev = code
		l.labelChildren(c)
	}
	l.lastCode[n] = prev
}

// SchemeName implements labeling.Labeling.
func (l *Labeling) SchemeName() string { return l.scheme.Name() }

// Doc implements labeling.Labeling.
func (l *Labeling) Doc() *xmltree.Document { return l.doc }

// BitsOf returns n's full label, for diagnostics and the rdb engine.
func (l *Labeling) BitsOf(n *xmltree.Node) (Bits, bool) {
	nl, ok := l.labels[n]
	if !ok {
		return Bits{}, false
	}
	return nl.label, true
}

// IsAncestor implements the prefix containment test.
func (l *Labeling) IsAncestor(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	return lb.label.Len() > la.label.Len() && lb.label.HasPrefix(la.label)
}

// IsParent tests that a's label plus b's own sibling code equals b's label.
func (l *Labeling) IsParent(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	return lb.code.Len() > 0 &&
		lb.label.Len() == la.label.Len()+lb.code.Len() &&
		lb.label.HasPrefix(la.label)
}

// LabelBits implements labeling.Labeling.
func (l *Labeling) LabelBits(n *xmltree.Node) int {
	nl, ok := l.labels[n]
	if !ok {
		return 0
	}
	return nl.label.Len()
}

// MaxLabelBits implements labeling.Labeling.
func (l *Labeling) MaxLabelBits() int {
	max := 0
	for _, nl := range l.labels {
		if nl.label.Len() > max {
			max = nl.label.Len()
		}
	}
	return max
}

// Before implements labeling.Labeling: both prefix code generators issue
// sibling codes in increasing binary order, so lexicographic comparison of
// labels is document order — but only while OrderPreserving inserts keep it
// that way.
func (l *Labeling) Before(a, b *xmltree.Node) (bool, error) {
	if !l.scheme.OrderPreserving {
		return false, labeling.ErrOrderUnsupported
	}
	la, ok := l.labels[a]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	lb, ok := l.labels[b]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	return la.label.Compare(lb.label) < 0, nil
}

// InsertChildAt implements labeling.Labeling. Appends — and any insert in
// the unordered configuration — cost exactly one label: the new node takes
// the next sibling code. An order-preserving insert between siblings
// renumbers every following sibling and its subtree.
func (l *Labeling) InsertChildAt(parent *xmltree.Node, idx int, n *xmltree.Node) (int, error) {
	if _, ok := l.labels[parent]; !ok {
		return 0, fmt.Errorf("prefix: insert under unlabeled parent")
	}
	if err := l.validateFresh(n); err != nil {
		return 0, err
	}
	if err := parent.InsertChildAt(idx, n); err != nil {
		return 0, err
	}
	kids := parent.ElementChildren()
	appended := kids[len(kids)-1] == n
	if appended || !l.scheme.OrderPreserving {
		code := l.scheme.nextSibCode(l.lastCode[parent])
		l.lastCode[parent] = code
		l.labels[n] = &pfxLabel{label: l.labels[parent].label.Append(code), code: code}
		return 1, nil
	}
	// Order-preserving mid-list insert: renumber from the insertion point.
	return l.renumberChildren(parent, n), nil
}

// renumberChildren reassigns sibling codes to all children of parent,
// relabeling the subtrees of every child whose code changed. It returns the
// number of labels written, counting newNode as one.
func (l *Labeling) renumberChildren(parent, newNode *xmltree.Node) int {
	count := 0
	prev := Bits{}
	parentLabel := l.labels[parent].label
	for _, c := range parent.ElementChildren() {
		code := l.scheme.nextSibCode(prev)
		prev = code
		old, had := l.labels[c]
		if had && old.code.Equal(code) {
			continue // label unchanged; subtree untouched
		}
		l.labels[c] = &pfxLabel{label: parentLabel.Append(code), code: code}
		count++
		count += l.relabelSubtree(c)
	}
	l.lastCode[parent] = prev
	return count
}

// relabelSubtree recomputes labels below c (codes unchanged), returning the
// number of nodes touched.
func (l *Labeling) relabelSubtree(c *xmltree.Node) int {
	count := 0
	base := l.labels[c].label
	for _, ch := range c.ElementChildren() {
		nl := l.labels[ch]
		nl.label = base.Append(nl.code)
		count++
		count += l.relabelSubtree(ch)
	}
	return count
}

// WrapNode implements labeling.Labeling: the wrapper takes target's code
// and the target subtree is relabeled below it.
func (l *Labeling) WrapNode(target, wrapper *xmltree.Node) (int, error) {
	tl, ok := l.labels[target]
	if !ok {
		return 0, fmt.Errorf("prefix: wrap of unlabeled node")
	}
	if target == l.doc.Root {
		return 0, xmltree.ErrIsRoot
	}
	if err := l.validateFresh(wrapper); err != nil {
		return 0, err
	}
	parent := target.Parent
	if err := xmltree.WrapChildren(parent, wrapper, target, target); err != nil {
		return 0, err
	}
	// Wrapper inherits target's old code and position; target becomes the
	// wrapper's first child.
	l.labels[wrapper] = &pfxLabel{label: tl.label, code: tl.code}
	firstCode := l.scheme.nextSibCode(Bits{})
	l.labels[target] = &pfxLabel{label: tl.label.Append(firstCode), code: firstCode}
	l.lastCode[wrapper] = firstCode
	count := 2 + l.relabelSubtree(target)
	return count, nil
}

// Delete implements labeling.Labeling: no other labels change.
func (l *Labeling) Delete(n *xmltree.Node) error {
	if _, ok := l.labels[n]; !ok {
		return fmt.Errorf("prefix: delete of unlabeled node")
	}
	if n == l.doc.Root {
		return xmltree.ErrIsRoot
	}
	for _, m := range xmltree.Elements(n) {
		delete(l.labels, m)
		delete(l.lastCode, m)
	}
	n.Detach()
	return nil
}

func (l *Labeling) validateFresh(n *xmltree.Node) error {
	if n == nil {
		return xmltree.ErrNilNode
	}
	if n.Kind != xmltree.ElementNode {
		return errors.New("prefix: only element nodes are labeled")
	}
	if n.Parent != nil {
		return xmltree.ErrHasParent
	}
	if len(n.Children) > 0 {
		return errors.New("prefix: inserted nodes must be childless")
	}
	if _, ok := l.labels[n]; ok {
		return errors.New("prefix: node is already labeled")
	}
	return nil
}
