// Package prefix implements the dynamic prefix-based labeling schemes the
// paper compares against: Prefix-1 (unary "1^(i-1)0" sibling codes),
// Prefix-2 (the Cohen/Kaplan/Milo incremental binary codes [7]) and Dewey
// order labels [15]. A node's label is its parent's label with its own
// sibling code appended; ancestorship is a prefix test.
package prefix

import "strings"

// Bits is an immutable bit string. Labels are built by appending sibling
// codes, so Bits supports cheap append-and-copy and prefix tests.
type Bits struct {
	data []byte
	n    int // number of valid bits
}

// BitsFromString parses a string of '0'/'1' characters.
func BitsFromString(s string) Bits {
	var b Bits
	for _, c := range s {
		switch c {
		case '0':
			b = b.AppendBit(0)
		case '1':
			b = b.AppendBit(1)
		}
	}
	return b
}

// Len returns the number of bits.
func (b Bits) Len() int { return b.n }

// Bit returns bit i (0 or 1); i must be < Len.
func (b Bits) Bit(i int) int {
	return int(b.data[i/8]>>(7-uint(i%8))) & 1
}

// AppendBit returns a new Bits with one bit appended. The receiver is
// never modified; shared underlying bytes are copied on write.
func (b Bits) AppendBit(bit int) Bits {
	out := Bits{n: b.n + 1}
	out.data = make([]byte, (b.n+8)/8)
	copy(out.data, b.data)
	if bit != 0 {
		out.data[b.n/8] |= 1 << (7 - uint(b.n%8))
	}
	return out
}

// Append returns b with all of c's bits appended.
func (b Bits) Append(c Bits) Bits {
	out := Bits{n: b.n + c.n}
	out.data = make([]byte, (out.n+7)/8)
	copy(out.data, b.data)
	for i := 0; i < c.n; i++ {
		if c.Bit(i) != 0 {
			pos := b.n + i
			out.data[pos/8] |= 1 << (7 - uint(pos%8))
		}
	}
	return out
}

// HasPrefix reports whether p is a prefix of b (p.Len() <= b.Len() and the
// first p.Len() bits agree).
func (b Bits) HasPrefix(p Bits) bool {
	if p.n > b.n {
		return false
	}
	full := p.n / 8
	for i := 0; i < full; i++ {
		if b.data[i] != p.data[i] {
			return false
		}
	}
	for i := full * 8; i < p.n; i++ {
		if b.Bit(i) != p.Bit(i) {
			return false
		}
	}
	return true
}

// Equal reports bit-for-bit equality.
func (b Bits) Equal(c Bits) bool {
	return b.n == c.n && b.HasPrefix(c)
}

// Compare orders bit strings in the document order induced by prefix
// labels: lexicographic with "prefix comes first" (an ancestor precedes its
// descendants). Returns -1, 0 or 1.
func (b Bits) Compare(c Bits) int {
	min := b.n
	if c.n < min {
		min = c.n
	}
	for i := 0; i < min; i++ {
		d := b.Bit(i) - c.Bit(i)
		if d != 0 {
			return d
		}
	}
	switch {
	case b.n < c.n:
		return -1
	case b.n > c.n:
		return 1
	default:
		return 0
	}
}

// String renders the bits as '0'/'1' characters.
func (b Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		sb.WriteByte(byte('0' + b.Bit(i)))
	}
	return sb.String()
}

// allOnes reports whether every bit is 1 (false for the empty string).
func (b Bits) allOnes() bool {
	if b.n == 0 {
		return false
	}
	for i := 0; i < b.n; i++ {
		if b.Bit(i) == 0 {
			return false
		}
	}
	return true
}

// incrementOrExtend produces the next Cohen/Kaplan/Milo sibling code:
// increment the binary value; when the result is all ones, double its
// length by appending zeros (so the sequence runs 0, 10, 1100, 1101, 1110,
// 11110000, …). The resulting code set is prefix-free and binary-ordered.
func (b Bits) incrementOrExtend() Bits {
	next := b.increment()
	if !next.allOnes() {
		return next
	}
	out := next
	for i := 0; i < next.Len(); i++ {
		out = out.AppendBit(0)
	}
	return out
}

// increment returns the bit string interpreted as a binary number plus one,
// keeping the same width. It must not be called on an all-ones string.
func (b Bits) increment() Bits {
	out := Bits{n: b.n, data: make([]byte, len(b.data))}
	copy(out.data, b.data)
	for i := b.n - 1; i >= 0; i-- {
		mask := byte(1) << (7 - uint(i%8))
		if out.data[i/8]&mask == 0 {
			out.data[i/8] |= mask
			return out
		}
		out.data[i/8] &^= mask
	}
	panic("prefix: increment of all-ones bit string")
}
