package prefix

import (
	"fmt"
	"io"

	"primelabel/internal/labeling/wire"
	"primelabel/internal/xmltree"
)

// Persistence for prefix- and Dewey-labeled documents.
//
// Prefix sibling codes are history-dependent: unordered inserts take the
// next unused code past whatever was ever issued under a parent, and deletes
// leave gaps, so no relabeling pass regenerates them. Marshal stores each
// node's own sibling code plus the per-parent last-issued code (the
// allocator state appends resume from); full labels are parent label +
// code and are recomputed in one top-down pass on load. Dewey labels store
// the node's own path component the same way.

// pfxMagic and dwyMagic identify the two persistence formats and versions.
var (
	pfxMagic = []byte("PFXLBL\x01")
	dwyMagic = []byte("DWYLBL\x01")
)

// writeBits appends one bit string (length in bits plus packed bytes).
func writeBits(w *wire.Writer, b Bits) {
	w.Int(b.n)
	w.Bytes(b.data)
}

// readBits reads a bit string written by writeBits.
func readBits(r *wire.Reader) Bits {
	n := r.Int()
	data := r.Bytes()
	if r.Err() != nil {
		return Bits{}
	}
	if len(data) != (n+7)/8 {
		r.Fail("bit string length %d does not match %d data bytes", n, len(data))
		return Bits{}
	}
	return Bits{data: data, n: n}
}

// Marshal writes the prefix-labeled document — variant configuration, tree,
// each node's sibling code, and the per-parent code allocator state — to out
// in the internal binary format read by Unmarshal.
func (l *Labeling) Marshal(out io.Writer) error {
	w := wire.NewWriter(out)
	w.Raw(pfxMagic)
	w.Int(int(l.scheme.Variant))
	w.Bool(l.scheme.OrderPreserving)
	wire.WriteTree(w, l.doc.Root, func(n *xmltree.Node) {
		nl := l.labels[n]
		if nl == nil {
			w.Fail("prefix: unlabeled element %s", xmltree.PathTo(n))
			return
		}
		writeBits(w, nl.code)
		writeBits(w, l.lastCode[n])
	})
	return w.Flush()
}

// Unmarshal reads a prefix labeling produced by Marshal, recomputing full
// labels from the stored sibling codes and verifying that every non-root
// element carries a non-empty code.
func Unmarshal(in io.Reader) (*Labeling, error) {
	r := wire.NewReader(in)
	r.Expect(pfxMagic)
	variant := Variant(r.Int())
	if variant != Prefix1 && variant != Prefix2 {
		r.Fail("unknown prefix variant %d", int(variant))
	}
	l := &Labeling{
		scheme:   Scheme{Variant: variant, OrderPreserving: r.Bool()},
		labels:   make(map[*xmltree.Node]*pfxLabel),
		lastCode: make(map[*xmltree.Node]Bits),
	}
	root, err := wire.ReadTree(r, func(n *xmltree.Node) error {
		l.labels[n] = &pfxLabel{code: readBits(r)}
		l.lastCode[n] = readBits(r)
		return r.Err()
	})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	l.doc = xmltree.NewDocument(root)
	// Second pass: full label = parent's full label + own code.
	var relabel func(n *xmltree.Node) error
	relabel = func(n *xmltree.Node) error {
		nl := l.labels[n]
		if n.Parent != nil {
			if nl.code.Len() == 0 {
				return fmt.Errorf("%w: empty sibling code on non-root %s", wire.ErrBadFormat, xmltree.PathTo(n))
			}
			nl.label = l.labels[n.Parent].label.Append(nl.code)
		}
		for _, c := range n.ElementChildren() {
			if err := relabel(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := relabel(root); err != nil {
		return nil, err
	}
	return l, nil
}

// Scheme returns the variant configuration this labeling was built with.
func (l *Labeling) Scheme() Scheme { return l.scheme }

// Marshal writes the Dewey-labeled document — tree plus each node's own
// path component — to out in the internal binary format read by
// UnmarshalDewey.
func (l *DeweyLabeling) Marshal(out io.Writer) error {
	w := wire.NewWriter(out)
	w.Raw(dwyMagic)
	wire.WriteTree(w, l.doc.Root, func(n *xmltree.Node) {
		d, ok := l.labels[n]
		if !ok {
			w.Fail("prefix: unlabeled element %s", xmltree.PathTo(n))
			return
		}
		if len(d) == 0 {
			w.Int(0) // root: empty label
			return
		}
		w.Int(d[len(d)-1])
	})
	return w.Flush()
}

// UnmarshalDewey reads a Dewey labeling produced by DeweyLabeling.Marshal,
// rebuilding full labels top-down and verifying that sibling components stay
// strictly increasing (the order invariant deletes and inserts preserve).
func UnmarshalDewey(in io.Reader) (*DeweyLabeling, error) {
	r := wire.NewReader(in)
	r.Expect(dwyMagic)
	components := make(map[*xmltree.Node]int)
	root, err := wire.ReadTree(r, func(n *xmltree.Node) error {
		components[n] = r.Int()
		return r.Err()
	})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	l := &DeweyLabeling{doc: xmltree.NewDocument(root), labels: make(map[*xmltree.Node]deweyLabel)}
	l.labels[root] = deweyLabel{}
	var build func(n *xmltree.Node) error
	build = func(n *xmltree.Node) error {
		base := l.labels[n]
		prev := 0
		for _, c := range n.ElementChildren() {
			comp := components[c]
			if comp <= prev {
				return fmt.Errorf("%w: sibling component %d not increasing (prev %d) under %s",
					wire.ErrBadFormat, comp, prev, xmltree.PathTo(n))
			}
			prev = comp
			lbl := make(deweyLabel, len(base)+1)
			copy(lbl, base)
			lbl[len(base)] = comp
			l.labels[c] = lbl
			if err := build(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(root); err != nil {
		return nil, err
	}
	return l, nil
}
