package prefix

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

// DeweyScheme implements the Dewey order labels of Tatarinov et al. [15]:
// a node's label is the vector of its ancestors' sibling positions, e.g.
// 1.2.4. The paper classifies Dewey as the best query/update tradeoff among
// the order-encoding schemes of [15], and Figure 18 groups its ordered
// update cost with the other relabeling schemes.
type DeweyScheme struct{}

// Name implements labeling.Scheme.
func (DeweyScheme) Name() string { return "dewey" }

type deweyLabel []int

func (d deweyLabel) String() string {
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ".")
}

// DeweyLabeling is a Dewey-labeled document.
type DeweyLabeling struct {
	doc    *xmltree.Document
	labels map[*xmltree.Node]deweyLabel
}

var _ labeling.Labeling = (*DeweyLabeling)(nil)

// Label implements labeling.Scheme.
func (s DeweyScheme) Label(doc *xmltree.Document) (labeling.Labeling, error) {
	l, err := s.New(doc)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// New labels doc and returns the concrete labeling.
func (DeweyScheme) New(doc *xmltree.Document) (*DeweyLabeling, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("prefix: nil document")
	}
	l := &DeweyLabeling{doc: doc, labels: make(map[*xmltree.Node]deweyLabel)}
	l.labels[doc.Root] = deweyLabel{}
	l.relabelChildren(doc.Root)
	return l, nil
}

// relabelChildren rewrites the labels of n's children (and their subtrees)
// from n's current label, returning the number of labels that changed or
// were created.
func (l *DeweyLabeling) relabelChildren(n *xmltree.Node) int {
	count := 0
	base := l.labels[n]
	pos := 0
	for _, c := range n.Children {
		if c.Kind != xmltree.ElementNode {
			continue
		}
		pos++
		lbl := make(deweyLabel, len(base)+1)
		copy(lbl, base)
		lbl[len(base)] = pos
		if old, ok := l.labels[c]; !ok || !deweyEqual(old, lbl) {
			l.labels[c] = lbl
			count++
			count += l.relabelChildren(c)
		}
	}
	return count
}

func deweyEqual(a, b deweyLabel) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SchemeName implements labeling.Labeling.
func (l *DeweyLabeling) SchemeName() string { return "dewey" }

// Doc implements labeling.Labeling.
func (l *DeweyLabeling) Doc() *xmltree.Document { return l.doc }

// DeweyOf returns the label as a dotted string ("" for the root).
func (l *DeweyLabeling) DeweyOf(n *xmltree.Node) (string, bool) {
	d, ok := l.labels[n]
	if !ok {
		return "", false
	}
	return d.String(), true
}

// IsAncestor implements the component-wise prefix test.
func (l *DeweyLabeling) IsAncestor(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	if len(la) >= len(lb) {
		return false
	}
	for i := range la {
		if la[i] != lb[i] {
			return false
		}
	}
	return true
}

// IsParent is a prefix test with exactly one extra component.
func (l *DeweyLabeling) IsParent(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	return len(lb) == len(la)+1 && l.IsAncestor(a, b)
}

// LabelBits charges each component its binary width plus one delimiter bit,
// the storage model the paper uses when discussing [15]'s delimiter
// overhead.
func (l *DeweyLabeling) LabelBits(n *xmltree.Node) int {
	d, ok := l.labels[n]
	if !ok {
		return 0
	}
	total := 0
	for _, c := range d {
		total += bits.Len(uint(c)) + 1
	}
	if total == 0 {
		total = 1 // the root's empty label still occupies a slot
	}
	return total
}

// MaxLabelBits implements labeling.Labeling.
func (l *DeweyLabeling) MaxLabelBits() int {
	max := 0
	for n := range l.labels {
		if b := l.LabelBits(n); b > max {
			max = b
		}
	}
	return max
}

// Before compares labels lexicographically; Dewey encodes document order
// directly.
func (l *DeweyLabeling) Before(a, b *xmltree.Node) (bool, error) {
	la, ok := l.labels[a]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	lb, ok := l.labels[b]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	min := len(la)
	if len(lb) < min {
		min = len(lb)
	}
	for i := 0; i < min; i++ {
		if la[i] != lb[i] {
			return la[i] < lb[i], nil
		}
	}
	return len(la) < len(lb), nil
}

// InsertChildAt implements labeling.Labeling: Dewey always keeps sibling
// positions in document order, so a mid-list insert renumbers all following
// siblings and their subtrees.
func (l *DeweyLabeling) InsertChildAt(parent *xmltree.Node, idx int, n *xmltree.Node) (int, error) {
	if _, ok := l.labels[parent]; !ok {
		return 0, fmt.Errorf("prefix: insert under unlabeled parent")
	}
	if n == nil {
		return 0, xmltree.ErrNilNode
	}
	if n.Kind != xmltree.ElementNode {
		return 0, errors.New("prefix: only element nodes are labeled")
	}
	if len(n.Children) > 0 {
		return 0, errors.New("prefix: inserted nodes must be childless")
	}
	if _, ok := l.labels[n]; ok {
		return 0, errors.New("prefix: node is already labeled")
	}
	if err := parent.InsertChildAt(idx, n); err != nil {
		return 0, err
	}
	return l.relabelChildren(parent), nil
}

// WrapNode implements labeling.Labeling.
func (l *DeweyLabeling) WrapNode(target, wrapper *xmltree.Node) (int, error) {
	if _, ok := l.labels[target]; !ok {
		return 0, fmt.Errorf("prefix: wrap of unlabeled node")
	}
	if target == l.doc.Root {
		return 0, xmltree.ErrIsRoot
	}
	if _, ok := l.labels[wrapper]; ok {
		return 0, errors.New("prefix: node is already labeled")
	}
	parent := target.Parent
	if err := xmltree.WrapChildren(parent, wrapper, target, target); err != nil {
		return 0, err
	}
	// The wrapper takes target's position; target becomes child 1.
	return l.relabelChildren(parent), nil
}

// Delete implements labeling.Labeling. Dewey tolerates gaps in sibling
// numbering (order stays correct), so deletion does not renumber.
func (l *DeweyLabeling) Delete(n *xmltree.Node) error {
	if _, ok := l.labels[n]; !ok {
		return fmt.Errorf("prefix: delete of unlabeled node")
	}
	if n == l.doc.Root {
		return xmltree.ErrIsRoot
	}
	for _, m := range xmltree.Elements(n) {
		delete(l.labels, m)
	}
	n.Detach()
	return nil
}
