package prefix

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randBits generates an arbitrary Bits value for testing/quick.
func randBits(rng *rand.Rand, maxLen int) Bits {
	n := rng.Intn(maxLen)
	b := Bits{}
	for i := 0; i < n; i++ {
		b = b.AppendBit(rng.Intn(2))
	}
	return b
}

// Generate implements quick.Generator.
func (Bits) Generate(rng *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(randBits(rng, size+1))
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(161))}
}

// Append is associative and length-additive.
func TestQuickBitsAppendLaws(t *testing.T) {
	f := func(a, b, c Bits) bool {
		ab := a.Append(b)
		if ab.Len() != a.Len()+b.Len() {
			return false
		}
		return ab.Append(c).Equal(a.Append(b.Append(c)))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// a is always a prefix of a.Append(b), and round-trips through String.
func TestQuickBitsPrefixAndString(t *testing.T) {
	f := func(a, b Bits) bool {
		if !a.Append(b).HasPrefix(a) {
			return false
		}
		return BitsFromString(a.String()).Equal(a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Compare is a total order consistent with Equal and antisymmetric.
func TestQuickBitsCompareOrder(t *testing.T) {
	f := func(a, b Bits) bool {
		ab, ba := a.Compare(b), b.Compare(a)
		if ab != -ba {
			return false
		}
		if (ab == 0) != a.Equal(b) {
			return false
		}
		return a.Compare(a) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Appending to a keeps it >= a in the prefix order (ancestors first).
func TestQuickBitsAncestorSortsFirst(t *testing.T) {
	f := func(a, b Bits) bool {
		if b.Len() == 0 {
			return true
		}
		return a.Compare(a.Append(b)) < 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Prefix-2 sibling codes are prefix-free and strictly increasing in binary
// order — the two facts the labeling scheme's correctness rests on.
func TestQuickPrefix2CodeStream(t *testing.T) {
	s := Scheme{Variant: Prefix2}
	var codes []Bits
	code := Bits{}
	for i := 0; i < 300; i++ {
		code = s.nextSibCode(code)
		codes = append(codes, code)
	}
	for i := 0; i < len(codes); i++ {
		for j := i + 1; j < len(codes); j++ {
			if codes[j].HasPrefix(codes[i]) || codes[i].HasPrefix(codes[j]) {
				t.Fatalf("codes %d and %d are prefix-related: %s / %s", i, j, codes[i], codes[j])
			}
		}
		if i > 0 && codes[i-1].Compare(codes[i]) >= 0 {
			t.Fatalf("codes not increasing at %d: %s >= %s", i, codes[i-1], codes[i])
		}
	}
}

// Prefix-1 codes likewise.
func TestQuickPrefix1CodeStream(t *testing.T) {
	s := Scheme{Variant: Prefix1}
	var codes []Bits
	code := Bits{}
	for i := 0; i < 100; i++ {
		code = s.nextSibCode(code)
		codes = append(codes, code)
		if code.Len() != i+1 {
			t.Fatalf("code %d has length %d, want %d (1^(i-1)0)", i, code.Len(), i+1)
		}
	}
	for i := 0; i < len(codes); i++ {
		for j := i + 1; j < len(codes); j++ {
			if codes[j].HasPrefix(codes[i]) {
				t.Fatalf("codes %d and %d are prefix-related", i, j)
			}
		}
	}
}
