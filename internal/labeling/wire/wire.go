// Package wire provides the shared binary primitives the labeling
// persistence codecs are built from: a varint-packed writer/reader pair with
// sticky error handling, plus a preorder tree serializer that interleaves
// per-element label payloads with the XML structure — the same layout the
// prime scheme's persist format pioneered.
//
// Streams written with this package are internal formats: they are versioned
// by each scheme's magic header and carry no cross-version compatibility
// promise.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"primelabel/internal/xmltree"
)

// ErrBadFormat reports a stream that is not a valid serialized labeling.
var ErrBadFormat = errors.New("wire: malformed stream")

// Limits that reject absurd values before they turn into huge allocations.
// No legitimate document comes anywhere near them.
const (
	maxStringLen = 1 << 28
	maxChildren  = 1 << 24
)

// Writer encodes varint-packed values onto an underlying stream. Errors are
// sticky: after the first write failure every call is a no-op and Flush
// returns the error.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer buffering onto out.
func NewWriter(out io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(out)}
}

// Uvarint writes one unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

// Int writes a non-negative int as a uvarint.
func (w *Writer) Int(v int) { w.Uvarint(uint64(v)) }

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

// Bool writes a boolean as a 0/1 uvarint.
func (w *Writer) Bool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	w.Uvarint(v)
}

// F64 writes a float64 as its fixed 8-byte little-endian bit pattern
// (bit-exact round-tripping matters: float labels are allocation state).
func (w *Writer) F64(v float64) {
	if w.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	_, w.err = w.w.Write(b[:])
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Raw writes bytes verbatim, without a length prefix (used for magic
// headers).
func (w *Writer) Raw(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Fail marks the stream bad with a formatted error (no-op if an error is
// already recorded). Codecs use it when the in-memory state they are asked
// to serialize is itself inconsistent.
func (w *Writer) Fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf(format, args...)
	}
}

// Flush writes buffered bytes through and returns the first error
// encountered by any prior call.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes streams written by Writer. Errors are sticky: after the
// first failure every read returns a zero value and Err reports the cause.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader returns a Reader buffering from in.
func NewReader(in io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(in)}
}

// Uvarint reads one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return v
}

// Int reads a non-negative int written by Writer.Int.
func (r *Reader) Int() int { return int(r.Uvarint()) }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.err = fmt.Errorf("%w: unreasonable string length %d", ErrBadFormat, n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return ""
	}
	return string(buf)
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Uvarint() != 0 }

// F64 reads a float64 written by Writer.F64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxStringLen {
		r.err = fmt.Errorf("%w: unreasonable byte length %d", ErrBadFormat, n)
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return nil
	}
	return buf
}

// Expect consumes len(magic) bytes and fails the stream unless they match.
func (r *Reader) Expect(magic []byte) {
	if r.err != nil {
		return
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r.r, head); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return
	}
	if string(head) != string(magic) {
		r.err = fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Fail marks the stream bad with a formatted ErrBadFormat cause (no-op if an
// error is already recorded).
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBadFormat, fmt.Sprintf(format, args...))
	}
}

// Node kind tags used by WriteTree/ReadTree.
const (
	kindElement = 0
	kindText    = 1
)

// WriteTree serializes the subtree rooted at root in preorder. For each
// element node it writes the name and attributes, then calls elem to append
// the scheme's per-element payload, then the children. Text nodes carry
// their character data only.
func WriteTree(w *Writer, root *xmltree.Node, elem func(n *xmltree.Node)) {
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		if n.Kind == xmltree.TextNode {
			w.Int(kindText)
			w.Str(n.Data)
			return
		}
		w.Int(kindElement)
		w.Str(n.Name)
		w.Int(len(n.Attrs))
		for _, a := range n.Attrs {
			w.Str(a.Name)
			w.Str(a.Value)
		}
		elem(n)
		w.Int(len(n.Children))
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
}

// ReadTree reconstructs a tree written by WriteTree. elem is called for each
// element node, immediately after its name and attributes are read and
// before its children, to consume the scheme's per-element payload; the node
// is not yet linked to its parent at that point.
func ReadTree(r *Reader, elem func(n *xmltree.Node) error) (*xmltree.Node, error) {
	var read func(isRoot bool) (*xmltree.Node, error)
	read = func(isRoot bool) (*xmltree.Node, error) {
		kind := r.Int()
		if r.err != nil {
			return nil, r.err
		}
		switch kind {
		case kindText:
			if isRoot {
				return nil, fmt.Errorf("%w: text node as root", ErrBadFormat)
			}
			return xmltree.NewText(r.Str()), nil
		case kindElement:
			n := xmltree.NewElement(r.Str())
			attrCount := r.Int()
			if r.err != nil {
				return nil, r.err
			}
			if attrCount > maxChildren {
				return nil, fmt.Errorf("%w: unreasonable attribute count", ErrBadFormat)
			}
			for i := 0; i < attrCount; i++ {
				n.Attrs = append(n.Attrs, xmltree.Attr{Name: r.Str(), Value: r.Str()})
			}
			if err := elem(n); err != nil {
				return nil, err
			}
			childCount := r.Int()
			if r.err != nil {
				return nil, r.err
			}
			if childCount > maxChildren {
				return nil, fmt.Errorf("%w: unreasonable child count", ErrBadFormat)
			}
			for i := 0; i < childCount; i++ {
				c, err := read(false)
				if err != nil {
					return nil, err
				}
				if err := n.AppendChild(c); err != nil {
					return nil, err
				}
			}
			return n, nil
		default:
			return nil, fmt.Errorf("%w: unknown node kind %d", ErrBadFormat, kind)
		}
	}
	return read(true)
}
