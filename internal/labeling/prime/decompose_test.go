package prime

import (
	"math/rand"
	"strings"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

// deepChain builds a single path of the given length.
func deepChain(depth int) *xmltree.Document {
	root := xmltree.NewElement("n")
	cur := root
	for i := 1; i < depth; i++ {
		c := xmltree.NewElement("n")
		_ = cur.AppendChild(c)
		cur = c
	}
	return xmltree.NewDocument(root)
}

func TestDecomposedAgainstTree(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, h := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 10; trial++ {
			doc := randomTree(rng, 70)
			l, err := DecomposedScheme{LayerHeight: h}.Label(doc)
			if err != nil {
				t.Fatal(err)
			}
			if err := labeling.CheckAgainstTree(l); err != nil {
				t.Fatalf("h=%d trial %d: %v", h, trial, err)
			}
		}
	}
}

func TestDecomposedDeepChain(t *testing.T) {
	doc := deepChain(40)
	l, err := DecomposedScheme{LayerHeight: 4}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
	els := xmltree.Elements(doc.Root)
	deepest := els[len(els)-1]
	// Chain length = ceil((depth)/h) + 1 elements (root contributes one).
	chain := l.ChainOf(deepest)
	if len(chain) != 11 { // depth 39 → layers 0..9 → 10 chain elements + root's
		t.Errorf("chain length = %d, want 11", len(chain))
	}
}

// Decomposition caps per-element growth: on deep documents the decomposed
// label needs fewer bits than the flat product label.
func TestDecomposedSmallerOnDeepDocs(t *testing.T) {
	doc := deepChain(120)
	flat, err := Scheme{}.New(doc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecomposedScheme{LayerHeight: 8}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.MaxLabelBits() >= flat.MaxLabelBits() {
		t.Errorf("decomposed bits %d not below flat %d", dec.MaxLabelBits(), flat.MaxLabelBits())
	}
}

func TestDecomposedIsParent(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	doc := randomTree(rng, 50)
	l, err := DecomposedScheme{LayerHeight: 3}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	els := xmltree.Elements(doc.Root)
	for _, a := range els {
		for _, b := range els {
			want := b.Parent == a
			if got := l.IsParent(a, b); got != want {
				t.Fatalf("IsParent(%s,%s) = %v, want %v", xmltree.PathTo(a), xmltree.PathTo(b), got, want)
			}
		}
	}
}

func TestDecomposedInsertNoRelabel(t *testing.T) {
	doc := deepChain(20)
	l, err := DecomposedScheme{LayerHeight: 4}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	els := xmltree.Elements(doc.Root)
	target := els[10]
	before := map[*xmltree.Node]string{}
	for _, e := range els {
		before[e] = chainString(l, e)
	}
	n := xmltree.NewElement("new")
	count, err := l.InsertChildAt(target, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("insert relabel count = %d, want 1", count)
	}
	for _, e := range els {
		if chainString(l, e) != before[e] {
			t.Errorf("existing node %v relabeled", xmltree.PathTo(e))
		}
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
}

func chainString(l *DecomposedLabeling, n *xmltree.Node) string {
	parts := []string{}
	for _, e := range l.ChainOf(n) {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ",")
}

func TestDecomposedWrapRelabelsSubtreeOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	doc := randomTree(rng, 40)
	l, err := DecomposedScheme{LayerHeight: 2}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	els := xmltree.Elements(doc.Root)
	var target *xmltree.Node
	for _, e := range els {
		if e != doc.Root {
			target = e
			break
		}
	}
	w := xmltree.NewElement("w")
	count, err := l.WrapNode(target, w)
	if err != nil {
		t.Fatal(err)
	}
	wantCount := 1 + len(xmltree.Elements(target))
	if count != wantCount {
		t.Errorf("wrap relabel count = %d, want %d", count, wantCount)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposedDeleteAndErrors(t *testing.T) {
	doc := deepChain(10)
	l, err := DecomposedScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	els := xmltree.Elements(doc.Root)
	if err := l.Delete(els[5]); err != nil {
		t.Fatal(err)
	}
	if l.ChainOf(els[6]) != nil {
		t.Error("descendant of deleted node still labeled")
	}
	if err := l.Delete(doc.Root); err != xmltree.ErrIsRoot {
		t.Errorf("delete root err = %v", err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Before(els[1], els[2]); err != labeling.ErrOrderUnsupported {
		t.Errorf("Before err = %v", err)
	}
}

func TestDecomposedSchemeName(t *testing.T) {
	if got := (DecomposedScheme{}).Name(); got != "prime-decomposed(h=4)" {
		t.Errorf("Name = %q", got)
	}
	if got := (DecomposedScheme{LayerHeight: 2}).Name(); got != "prime-decomposed(h=2)" {
		t.Errorf("Name = %q", got)
	}
}
