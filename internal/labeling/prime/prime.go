// Package prime implements the paper's primary contribution: the top-down
// prime number labeling scheme for dynamic ordered XML trees (Section 3),
// its three optimizations (Section 3.2), document-order maintenance through
// the simultaneous congruence table (Section 4), and the bottom-up variant
// of Figure 1.
//
// Every element node carries a label that is the product of its parent's
// label and its own self-label. Self-labels are distinct primes (or, under
// Opt2, successive powers of two for leaves), so
//
//	x is an ancestor of y  ⇔  label(y) mod label(x) == 0
//
// (with the odd-label guard of Property 3 when Opt2 is active). Newly
// inserted nodes consume fresh primes and never force relabeling of
// existing nodes — the property the paper's update experiments measure.
package prime

import (
	"errors"
	"fmt"
	"math/big"

	"primelabel/internal/labeling"
	"primelabel/internal/order"
	"primelabel/internal/primes"
	"primelabel/internal/xmltree"
)

// Errors specific to the prime scheme.
var (
	ErrNotElement = errors.New("prime: only element nodes are labeled")
	ErrHasLabel   = errors.New("prime: node is already labeled")
)

// Options selects the optimizations from Section 3.2 and order support from
// Section 4.
type Options struct {
	// ReservedPrimes is Opt1: how many of the smallest primes to set aside
	// for the root's element children, whose self-labels are inherited by
	// every node below them. 0 disables the optimization; a negative value
	// sizes the pool automatically to the number of top-level nodes that
	// will consume reserved primes (recommended — a fixed pool larger than
	// the top level wastes the smallest primes entirely).
	ReservedPrimes int

	// PowerOfTwoLeaves is Opt2: label leaf elements 2^1, 2^2, … instead of
	// consuming primes, switching the ancestor test to Property 3
	// (ancestors must have odd labels). Prime 2 is then never used as a
	// self-label.
	PowerOfTwoLeaves bool

	// Power2Threshold caps the exponent used by Opt2. Once a parent has
	// issued this many power-of-two leaf labels, further leaf children fall
	// back to primes — the safety valve Section 3.2 describes for wide
	// sibling lists ("when the size of a label in a leaf node reaches some
	// pre-determined threshold, we can use other prime numbers"). Without
	// it a 1000-wide sibling list would mint a 1000-bit 2^k label while a
	// fresh prime costs ~15 bits. 0 means 16, past which primes are almost
	// always cheaper.
	Power2Threshold int

	// TrackOrder builds the SC table so the labeling can answer document
	// order queries and absorb order-sensitive updates (Section 4).
	TrackOrder bool

	// SCChunk is the number of nodes grouped under one SC value; the paper
	// uses 5 in Section 5.4. 0 means 5. Ignored unless TrackOrder is set.
	SCChunk int

	// OrderSpacing spaces order numbers G apart (an extension beyond the
	// paper): an order-sensitive insert between two nodes whose gap is
	// still open touches exactly one SC record instead of shifting every
	// follower. 0 or 1 is the paper's dense numbering. Ignored unless
	// TrackOrder is set.
	OrderSpacing int

	// RecyclePrimes returns the primes of deleted nodes to a pool for
	// reuse (an extension beyond the paper, which retires each prime
	// forever). Bounds label growth under insert/delete churn; see
	// recycle.go.
	RecyclePrimes bool
}

func (o Options) power2Threshold() int {
	if o.Power2Threshold <= 0 {
		return 16
	}
	return o.Power2Threshold
}

func (o Options) scChunk() int {
	if o.SCChunk <= 0 {
		return 5
	}
	return o.SCChunk
}

func (o Options) orderSpacing() int {
	if o.OrderSpacing <= 0 {
		return 1
	}
	return o.OrderSpacing
}

// Scheme labels documents with the top-down prime number scheme.
type Scheme struct {
	Opts Options
}

// Name implements labeling.Scheme. The variant suffixes identify the active
// optimizations, e.g. "prime+opt1+opt2".
func (s Scheme) Name() string {
	name := "prime"
	if s.Opts.ReservedPrimes != 0 {
		name += "+opt1"
	}
	if s.Opts.PowerOfTwoLeaves {
		name += "+opt2"
	}
	return name
}

// nodeLabel is the per-node labeling state.
type nodeLabel struct {
	label     *big.Int // full label: parent label × self label
	u64       uint64   // the label value when it fits in 64 bits (small == true)
	small     bool     // fast-path flag: label < 2^64
	bits      int32    // cached label.BitLen()
	depth     int32    // distance from the root (root = 0)
	sig       pathSig  // Bloom filter over the root path's self-labels
	selfPrime uint64   // prime self-label; 0 for power-of-two leaves and the root
	exp       int      // exponent k for a 2^k self-label; 0 otherwise
	orderKey  uint64   // prime keying this node in the SC table; 0 if untracked/root
	selfCache *big.Int // memoized selfBig; reset when the self-label changes
}

// setLabel stores the full label and refreshes the uint64 fast path. Most
// real documents have labels well under 64 bits (Section 3.1's size model),
// so ancestor tests usually reduce to one machine modulo.
//
// setLabel also materializes selfCache eagerly (the self-label fields are
// always final when the full label is computed). That keeps every read path
// — IsAncestor, IsParent, SelfLabelOf — free of writes, so a quiescent
// Labeling is safe for any number of concurrent readers; see the type's doc
// comment.
func (nl *nodeLabel) setLabel(v *big.Int) {
	nl.label = v
	nl.bits = int32(v.BitLen())
	if v.BitLen() <= 64 {
		nl.u64 = v.Uint64()
		nl.small = true
	} else {
		nl.u64 = 0
		nl.small = false
	}
	if nl.selfCache == nil {
		nl.selfBig()
	}
}

// selfBig returns the self-label as a big.Int. The value is memoized and
// must be treated as read-only by callers.
func (nl *nodeLabel) selfBig() *big.Int {
	if nl.selfCache != nil {
		return nl.selfCache
	}
	switch {
	case nl.selfPrime != 0:
		nl.selfCache = new(big.Int).SetUint64(nl.selfPrime)
	case nl.exp > 0:
		nl.selfCache = new(big.Int).Lsh(big.NewInt(1), uint(nl.exp))
	default:
		nl.selfCache = big.NewInt(1) // root
	}
	return nl.selfCache
}

// Labeling is a prime-labeled document.
//
// Concurrency: a Labeling is not internally synchronized, but all query
// methods (IsAncestor, IsParent, Before, OrderOf, LabelBits, MaxLabelBits,
// LabelOf, SelfLabelOf) are strictly read-only — no lazy memoization runs
// during reads — so any number of goroutines may query concurrently as long
// as no mutation (InsertChildAt, WrapNode, Delete) is in flight. Callers
// that mix queries and updates must serialize with an external lock such as
// a sync.RWMutex; the label server in internal/server does exactly that.
type Labeling struct {
	doc    *xmltree.Document
	opts   Options
	labels map[*xmltree.Node]*nodeLabel
	src    *primes.Source
	sct    *order.Table
	byKey  map[uint64]*xmltree.Node // order key -> node
	// power2Count tracks, per parent, how many power-of-two leaf labels
	// have been issued (Figure 7's childNum counter).
	power2Count map[*xmltree.Node]int
	// free pools the primes of deleted nodes when Options.RecyclePrimes is
	// set.
	free primeHeap
	// fastPath enables the constant-time ancestor prefilter (fastpath.go);
	// on by default, switchable off via SetFastPath for baselines.
	fastPath bool
	// stats, when non-nil, receives IsAncestor outcome counts.
	stats *AncestorStats
}

var _ labeling.Labeling = (*Labeling)(nil)

// Label implements labeling.Scheme, running Figure 7's PrimeLabel algorithm
// over the document.
func (s Scheme) Label(doc *xmltree.Document) (labeling.Labeling, error) {
	l, err := s.New(doc)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// New labels doc and returns the concrete *Labeling (callers that need
// prime-specific accessors use this instead of the interface-typed Label).
func (s Scheme) New(doc *xmltree.Document) (*Labeling, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("prime: nil document")
	}
	if doc.Root.Kind != xmltree.ElementNode {
		return nil, ErrNotElement
	}
	opts := s.Opts
	var src *primes.Source
	if opts.PowerOfTwoLeaves {
		// Prime 2 is reserved for leaf labels: non-leaf self-labels must be
		// odd so Property 3's guard works.
		src = primes.NewSourceStartingAt(3)
	} else {
		src = primes.NewSource()
	}
	l := &Labeling{
		doc:         doc,
		opts:        opts,
		labels:      make(map[*xmltree.Node]*nodeLabel),
		src:         src,
		byKey:       make(map[uint64]*xmltree.Node),
		power2Count: make(map[*xmltree.Node]int),
		fastPath:    true,
	}
	if opts.ReservedPrimes != 0 {
		n := opts.ReservedPrimes
		if n < 0 {
			n = l.topLevelReserveCount()
		}
		src.Reserve(n)
	}
	if opts.TrackOrder {
		tbl, err := order.NewTableSpaced(opts.scChunk(), opts.orderSpacing(), func(min uint64) uint64 {
			for {
				p := l.src.Next()
				if p > min {
					return p
				}
			}
		})
		if err != nil {
			return nil, err
		}
		l.sct = tbl
	}
	// Pass 1: assign labels in document order (Figure 7).
	l.assign(doc.Root, nil)
	// Pass 2: register document order.
	if opts.TrackOrder {
		ord := 0
		var fail error
		xmltree.WalkElements(doc.Root, func(n *xmltree.Node) bool {
			if n == doc.Root {
				return true // the root's order number is defined to be 0
			}
			ord++
			if err := l.trackNode(n, ord); err != nil {
				fail = err
				return false
			}
			return true
		})
		if fail != nil {
			return nil, fail
		}
	}
	return l, nil
}

// topLevelReserveCount counts the root's element children that will draw
// from the Opt1 pool: under Opt2, leaves take powers of two instead.
func (l *Labeling) topLevelReserveCount() int {
	count := 0
	for _, c := range l.doc.Root.Children {
		if c.Kind != xmltree.ElementNode {
			continue
		}
		if l.opts.PowerOfTwoLeaves && c.IsLeaf() {
			continue
		}
		count++
	}
	return count
}

// assign labels the subtree rooted at n. parent is the nodeLabel of n's
// parent (nil for the root).
func (l *Labeling) assign(n *xmltree.Node, parent *nodeLabel) {
	nl := &nodeLabel{}
	switch {
	case parent == nil:
		// root: deriveFrom sets label 1
	case !n.IsLeaf():
		nl.selfPrime = l.nextNonLeafPrime(n)
	default:
		l.assignLeafSelf(n, nl)
	}
	nl.deriveFrom(parent)
	l.labels[n] = nl
	for _, c := range n.Children {
		if c.Kind == xmltree.ElementNode {
			l.assign(c, nl)
		}
	}
}

// nextNonLeafPrime returns the self-label for a non-leaf element, drawing
// from the Opt1 reserved pool for top-level nodes.
func (l *Labeling) nextNonLeafPrime(n *xmltree.Node) uint64 {
	if p := l.recycledPrime(); p != 0 {
		return p
	}
	if l.opts.ReservedPrimes != 0 && n.Parent == l.doc.Root {
		return l.src.NextReserved()
	}
	return l.src.Next()
}

// assignLeafSelf fills nl with a leaf self-label: 2^k under Opt2 (until the
// threshold), a fresh prime otherwise.
func (l *Labeling) assignLeafSelf(n *xmltree.Node, nl *nodeLabel) {
	if l.opts.PowerOfTwoLeaves {
		k := l.power2Count[n.Parent] + 1
		if k <= l.opts.power2Threshold() {
			l.power2Count[n.Parent] = k
			nl.exp = k
			return
		}
	}
	nl.selfPrime = l.nextNonLeafPrime(n)
}

// trackNode registers n in the SC table at order position ord, choosing an
// order key: the node's own prime self-label when it can encode the order
// number, a fresh prime otherwise (power-of-two leaves never have a prime
// self-label; Opt1's small reserved primes may be smaller than the order
// number — an edge the paper does not address, see DESIGN.md).
func (l *Labeling) trackNode(n *xmltree.Node, ord int) error {
	nl := l.labels[n]
	ordVal := uint64(ord) * uint64(l.opts.orderSpacing())
	key := nl.selfPrime
	if key == 0 || ordVal >= key {
		for {
			p := l.src.Next()
			if p > ordVal {
				key = p
				break
			}
		}
	}
	if err := l.sct.Append(key); err != nil {
		return fmt.Errorf("prime: SC table append: %w", err)
	}
	nl.orderKey = key
	l.byKey[key] = n
	return nil
}

// SchemeName implements labeling.Labeling.
func (l *Labeling) SchemeName() string { return Scheme{Opts: l.opts}.Name() }

// Doc implements labeling.Labeling.
func (l *Labeling) Doc() *xmltree.Document { return l.doc }

// Options returns the options this labeling was built with.
func (l *Labeling) Options() Options { return l.opts }

// LabelOf returns n's full label (a copy), or nil if n is unlabeled.
func (l *Labeling) LabelOf(n *xmltree.Node) *big.Int {
	nl, ok := l.labels[n]
	if !ok {
		return nil
	}
	return new(big.Int).Set(nl.label)
}

// SelfLabelOf returns n's self-label (a copy), or nil if n is unlabeled.
func (l *Labeling) SelfLabelOf(n *xmltree.Node) *big.Int {
	nl, ok := l.labels[n]
	if !ok {
		return nil
	}
	return new(big.Int).Set(nl.selfBig())
}

// IsAncestor implements Property 2 (and Property 3 when Opt2 is active):
// x is a proper ancestor of y iff label(y) mod label(x) == 0, with x's
// label required to be odd under Opt2. With the fast path enabled (the
// default), most non-ancestor pairs are rejected by the constant-time
// depth/bit-length/path-signature prefilter (fastpath.go) before any
// division runs; the prefilter is one-sided, so the result is identical
// either way. Concurrent readers are safe: the only writes are atomic
// adds on the optional stats counters and sync.Pool traffic.
func (l *Labeling) IsAncestor(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	if l.opts.PowerOfTwoLeaves && la.label.Bit(0) == 0 {
		return false // Property 3: even labels are leaves, never ancestors
	}
	if l.fastPath && (la.depth >= lb.depth || la.bits > lb.bits || !la.sig.subsetOf(lb.sig)) {
		if s := l.stats; s != nil {
			s.PrefilterRejects.Add(1)
		}
		return false
	}
	if la.small && lb.small {
		if s := l.stats; s != nil {
			s.ExactU64.Add(1)
		}
		if la.u64 != lb.u64 && lb.u64%la.u64 == 0 {
			if s := l.stats; s != nil {
				s.ExactTrue.Add(1)
			}
			return true
		}
		return false
	}
	if la.bits > lb.bits {
		return false // a label never divides a shorter one
	}
	if la.label.Cmp(lb.label) == 0 {
		return false // same node (labels are unique)
	}
	if s := l.stats; s != nil {
		s.ExactBig.Add(1)
	}
	r := remPool.Get().(*big.Int)
	zero := r.Rem(lb.label, la.label).Sign() == 0
	remPool.Put(r)
	if zero {
		if s := l.stats; s != nil {
			s.ExactTrue.Add(1)
		}
		return true
	}
	return false
}

// IsParent reports whether a is b's parent: a must be an ancestor and
// label(b) / label(a) must equal b's self-label.
func (l *Labeling) IsParent(a, b *xmltree.Node) bool {
	if !l.IsAncestor(a, b) {
		return false
	}
	la, lb := l.labels[a], l.labels[b]
	if la.small && lb.small {
		var selfU uint64
		if lb.selfPrime != 0 {
			selfU = lb.selfPrime
		} else if lb.exp > 0 && lb.exp < 64 {
			selfU = 1 << uint(lb.exp)
		}
		if selfU != 0 {
			return lb.u64/la.u64 == selfU
		}
	}
	q := remPool.Get().(*big.Int)
	eq := q.Quo(lb.label, la.label).Cmp(lb.selfBig()) == 0
	remPool.Put(q)
	return eq
}

// LabelBits implements labeling.Labeling: the bit length of the stored
// label integer.
func (l *Labeling) LabelBits(n *xmltree.Node) int {
	nl, ok := l.labels[n]
	if !ok {
		return 0
	}
	return nl.label.BitLen()
}

// MaxLabelBits implements labeling.Labeling.
func (l *Labeling) MaxLabelBits() int {
	max := 0
	for _, nl := range l.labels {
		if b := nl.label.BitLen(); b > max {
			max = b
		}
	}
	return max
}

// OrderOf returns n's global order number (root = 0). Requires TrackOrder.
func (l *Labeling) OrderOf(n *xmltree.Node) (int, error) {
	if l.sct == nil {
		return 0, labeling.ErrOrderUnsupported
	}
	if n == l.doc.Root {
		return 0, nil
	}
	nl, ok := l.labels[n]
	if !ok {
		return 0, labeling.ErrNotLabeled
	}
	return l.sct.OrderOf(nl.orderKey)
}

// Before implements labeling.Labeling using the SC table.
func (l *Labeling) Before(a, b *xmltree.Node) (bool, error) {
	oa, err := l.OrderOf(a)
	if err != nil {
		return false, err
	}
	ob, err := l.OrderOf(b)
	if err != nil {
		return false, err
	}
	return oa < ob, nil
}

// SCTable exposes the underlying SC table (nil unless TrackOrder).
func (l *Labeling) SCTable() *order.Table { return l.sct }

// Check verifies every internal invariant: each label is parent label ×
// self label, self primes are unique, power-of-two exponents are unique per
// parent, and (when tracking order) the SC table is consistent and agrees
// with document order. Tests call this after every mutation.
func (l *Labeling) Check() error {
	seenPrime := make(map[uint64]*xmltree.Node)
	seenLabel := make(map[string]*xmltree.Node)
	var fail error
	xmltree.WalkElements(l.doc.Root, func(n *xmltree.Node) bool {
		nl, ok := l.labels[n]
		if !ok {
			fail = fmt.Errorf("prime: %s unlabeled", xmltree.PathTo(n))
			return false
		}
		if key := nl.label.String(); seenLabel[key] != nil {
			fail = fmt.Errorf("prime: label %s shared by %s and %s", key, xmltree.PathTo(seenLabel[key]), xmltree.PathTo(n))
			return false
		} else {
			seenLabel[key] = n
		}
		var want big.Int
		if n.Parent == nil {
			want.SetInt64(1)
		} else {
			want.Mul(l.labels[n.Parent].label, nl.selfBig())
		}
		if want.Cmp(nl.label) != 0 {
			fail = fmt.Errorf("prime: %s label %v != parent×self %v", xmltree.PathTo(n), nl.label, &want)
			return false
		}
		if nl.selfPrime != 0 {
			if prev, dup := seenPrime[nl.selfPrime]; dup {
				fail = fmt.Errorf("prime: self prime %d reused by %s and %s", nl.selfPrime, xmltree.PathTo(prev), xmltree.PathTo(n))
				return false
			}
			seenPrime[nl.selfPrime] = n
			if !primes.IsPrime(nl.selfPrime) {
				fail = fmt.Errorf("prime: self label %d of %s is composite", nl.selfPrime, xmltree.PathTo(n))
				return false
			}
		}
		return true
	})
	if fail != nil {
		return fail
	}
	if len(l.labels) != len(xmltree.Elements(l.doc.Root)) {
		return fmt.Errorf("prime: %d labels for %d elements", len(l.labels), len(xmltree.Elements(l.doc.Root)))
	}
	if l.sct != nil {
		if err := l.sct.Verify(); err != nil {
			return err
		}
		// Order numbers must be strictly increasing in document order
		// (deletions leave gaps, so exact values are not checked).
		prev := 0
		var err error
		xmltree.WalkElements(l.doc.Root, func(n *xmltree.Node) bool {
			if n == l.doc.Root {
				return true
			}
			got, oerr := l.OrderOf(n)
			if oerr != nil {
				err = oerr
				return false
			}
			if got <= prev {
				err = fmt.Errorf("prime: %s order %d not after %d", xmltree.PathTo(n), got, prev)
				return false
			}
			prev = got
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}
