package prime

import (
	"errors"
	"fmt"
	"math/big"

	"primelabel/internal/labeling"
	"primelabel/internal/primes"
	"primelabel/internal/xmltree"
)

// Tree decomposition (Section 3.2, citing Kaplan/Milo/Shabo [10]).
//
// For deep trees the top-down label — a product of one prime per ancestor —
// grows linearly with depth. Decomposition cuts the tree into layers of
// height h: a node's label becomes a *chain* of small integers, one per
// layer crossed on the way down, where each element is the prime-product
// label local to that layer's subtree. Self-primes are unique within each
// layer (and reused across layers — the source of the size reduction), so
// divisibility still decides within-layer ancestry, and the chain elements
// record exactly which exit node each layer was left through:
//
//	a (layer i) is an ancestor of b (layer j) ⇔
//	  i <  j and local(a) divides chain(b)[i], or
//	  i == j and local(a) properly divides local(b).
//
// Insertions stay relabel-free exactly as in the flat scheme. The ablation
// benchmark compares chain storage against flat labels on deep documents.

// DecomposedScheme labels documents with layered prime labels.
type DecomposedScheme struct {
	// LayerHeight is the number of tree levels per layer (h). 0 means 4.
	LayerHeight int
}

func (s DecomposedScheme) layerHeight() int {
	if s.LayerHeight <= 0 {
		return 4
	}
	return s.LayerHeight
}

// Name implements labeling.Scheme.
func (s DecomposedScheme) Name() string {
	return fmt.Sprintf("prime-decomposed(h=%d)", s.layerHeight())
}

type decomposedLabel struct {
	chain []*big.Int // chain[0..k-1] are exit locals, chain[k] is the node's own local
	prime uint64     // the node's own self-prime (0 for the document root)
}

func (d *decomposedLabel) local() *big.Int { return d.chain[len(d.chain)-1] }

// DecomposedLabeling is a decomposition-labeled document. Each layer owns
// an independent prime source: divisibility comparisons only ever happen
// between labels of the same layer, so primes need only be unique within a
// layer — that reuse of small primes across layers is where the size
// reduction over the flat scheme comes from.
type DecomposedLabeling struct {
	doc    *xmltree.Document
	h      int
	labels map[*xmltree.Node]*decomposedLabel
	srcs   []*primes.Source // one per layer
}

// layerSource returns (creating on demand) the prime source for a layer.
func (l *DecomposedLabeling) layerSource(layer int) *primes.Source {
	for len(l.srcs) <= layer {
		l.srcs = append(l.srcs, primes.NewSource())
	}
	return l.srcs[layer]
}

var _ labeling.Labeling = (*DecomposedLabeling)(nil)

// Label implements labeling.Scheme.
func (s DecomposedScheme) Label(doc *xmltree.Document) (labeling.Labeling, error) {
	l, err := s.New(doc)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// New labels doc and returns the concrete labeling.
func (s DecomposedScheme) New(doc *xmltree.Document) (*DecomposedLabeling, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("prime: nil document")
	}
	l := &DecomposedLabeling{
		doc:    doc,
		h:      s.layerHeight(),
		labels: make(map[*xmltree.Node]*decomposedLabel),
	}
	l.labels[doc.Root] = &decomposedLabel{chain: []*big.Int{big.NewInt(1)}}
	var walk func(n *xmltree.Node, depth int)
	walk = func(n *xmltree.Node, depth int) {
		for _, c := range n.Children {
			if c.Kind != xmltree.ElementNode {
				continue
			}
			l.assignChild(n, c, depth+1)
			walk(c, depth+1)
		}
	}
	walk(doc.Root, 0)
	return l, nil
}

// assignChild labels c (at the given depth) from its already-labeled
// parent. Layer k covers depths [k*h+1, (k+1)*h] with the document root
// alone above layer 0.
func (l *DecomposedLabeling) assignChild(parent, c *xmltree.Node, depth int) {
	pl := l.labels[parent]
	p := l.layerSource((depth - 1) / l.h).Next()
	dl := &decomposedLabel{prime: p}
	if (depth-1)%l.h == 0 {
		// c starts a new layer: its chain extends the parent's full chain.
		dl.chain = append(append([]*big.Int{}, pl.chain...), new(big.Int).SetUint64(p))
	} else {
		// Same layer as parent: multiply into the local element.
		dl.chain = append([]*big.Int{}, pl.chain[:len(pl.chain)-1]...)
		local := new(big.Int).Mul(pl.local(), new(big.Int).SetUint64(p))
		dl.chain = append(dl.chain, local)
	}
	l.labels[c] = dl
}

// SchemeName implements labeling.Labeling.
func (l *DecomposedLabeling) SchemeName() string {
	return fmt.Sprintf("prime-decomposed(h=%d)", l.h)
}

// Doc implements labeling.Labeling.
func (l *DecomposedLabeling) Doc() *xmltree.Document { return l.doc }

// ChainOf returns a copy of n's label chain, or nil.
func (l *DecomposedLabeling) ChainOf(n *xmltree.Node) []*big.Int {
	dl, ok := l.labels[n]
	if !ok {
		return nil
	}
	out := make([]*big.Int, len(dl.chain))
	for i, e := range dl.chain {
		out[i] = new(big.Int).Set(e)
	}
	return out
}

// IsAncestor implements the layered divisibility test.
func (l *DecomposedLabeling) IsAncestor(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	i, j := len(la.chain), len(lb.chain)
	var r big.Int
	switch {
	case i > j:
		return false
	case i == j:
		if la.local().Cmp(lb.local()) == 0 {
			return false // identical chain length and local ⇒ same node
		}
		return r.Rem(lb.local(), la.local()).Sign() == 0
	default:
		return r.Rem(lb.chain[i-1], la.local()).Sign() == 0
	}
}

// IsParent reports whether a is b's parent: ancestor with quotient equal to
// b's own self-prime.
func (l *DecomposedLabeling) IsParent(a, b *xmltree.Node) bool {
	if !l.IsAncestor(a, b) {
		return false
	}
	la, lb := l.labels[a], l.labels[b]
	i, j := len(la.chain), len(lb.chain)
	var q big.Int
	switch {
	case i == j:
		q.Quo(lb.local(), la.local())
	case j == i+1:
		// b must be a layer root (its local is exactly its own prime) and a
		// the exit node whose local equals chain(b)[i-1].
		if lb.local().Cmp(new(big.Int).SetUint64(lb.prime)) != 0 {
			return false
		}
		if la.local().Cmp(lb.chain[i-1]) != 0 {
			return false
		}
		q.SetUint64(lb.prime)
	default:
		return false
	}
	return q.Cmp(new(big.Int).SetUint64(lb.prime)) == 0
}

// LabelBits is the total storage for the chain: the sum of element bit
// lengths.
func (l *DecomposedLabeling) LabelBits(n *xmltree.Node) int {
	dl, ok := l.labels[n]
	if !ok {
		return 0
	}
	bits := 0
	for _, e := range dl.chain {
		bits += e.BitLen()
	}
	return bits
}

// MaxLabelBits implements labeling.Labeling.
func (l *DecomposedLabeling) MaxLabelBits() int {
	max := 0
	for _, dl := range l.labels {
		bits := 0
		for _, e := range dl.chain {
			bits += e.BitLen()
		}
		if bits > max {
			max = bits
		}
	}
	return max
}

// Before implements labeling.Labeling; decomposition does not carry order.
func (l *DecomposedLabeling) Before(a, b *xmltree.Node) (bool, error) {
	return false, labeling.ErrOrderUnsupported
}

// InsertChildAt implements labeling.Labeling: only the new node is labeled.
func (l *DecomposedLabeling) InsertChildAt(parent *xmltree.Node, idx int, n *xmltree.Node) (int, error) {
	if _, ok := l.labels[parent]; !ok {
		return 0, fmt.Errorf("prime: insert under unlabeled parent")
	}
	if n == nil {
		return 0, xmltree.ErrNilNode
	}
	if n.Kind != xmltree.ElementNode {
		return 0, ErrNotElement
	}
	if len(n.Children) > 0 {
		return 0, fmt.Errorf("prime: inserted nodes must be childless")
	}
	if _, ok := l.labels[n]; ok {
		return 0, ErrHasLabel
	}
	if err := parent.InsertChildAt(idx, n); err != nil {
		return 0, err
	}
	l.assignChild(parent, n, n.Depth())
	return 1, nil
}

// WrapNode implements labeling.Labeling. Wrapping shifts the depth of the
// whole target subtree, moving nodes across layer boundaries, so the
// subtree is relabeled.
func (l *DecomposedLabeling) WrapNode(target, wrapper *xmltree.Node) (int, error) {
	if _, ok := l.labels[target]; !ok {
		return 0, fmt.Errorf("prime: wrap of unlabeled node")
	}
	if target == l.doc.Root {
		return 0, xmltree.ErrIsRoot
	}
	if wrapper == nil {
		return 0, xmltree.ErrNilNode
	}
	if _, ok := l.labels[wrapper]; ok {
		return 0, ErrHasLabel
	}
	parent := target.Parent
	if err := xmltree.WrapChildren(parent, wrapper, target, target); err != nil {
		return 0, err
	}
	l.assignChild(parent, wrapper, wrapper.Depth())
	relabeled := 1
	var walk func(p, c *xmltree.Node)
	walk = func(p, c *xmltree.Node) {
		// Every subtree node shifted one level deeper, possibly into a
		// different layer whose primes are drawn from a different source,
		// so each gets a fresh prime from its new layer.
		l.assignChild(p, c, c.Depth())
		relabeled++
		for _, cc := range c.Children {
			if cc.Kind == xmltree.ElementNode {
				walk(c, cc)
			}
		}
	}
	for _, c := range wrapper.Children {
		if c.Kind == xmltree.ElementNode {
			walk(wrapper, c)
		}
	}
	return relabeled, nil
}

// Delete implements labeling.Labeling.
func (l *DecomposedLabeling) Delete(n *xmltree.Node) error {
	if _, ok := l.labels[n]; !ok {
		return fmt.Errorf("prime: delete of unlabeled node")
	}
	if n == l.doc.Root {
		return xmltree.ErrIsRoot
	}
	for _, m := range xmltree.Elements(n) {
		delete(l.labels, m)
	}
	n.Detach()
	return nil
}
