package prime

import (
	"bytes"
	"testing"

	"primelabel/internal/xmltree"
)

// FuzzUnmarshal checks that arbitrary byte streams never panic the
// persistence decoder and that anything it accepts passes the full
// consistency check (Unmarshal runs Check internally; this guards that the
// guard stays in place).
func FuzzUnmarshal(f *testing.F) {
	// Seed with a couple of valid streams plus noise.
	for _, opts := range []Options{{}, {TrackOrder: true, PowerOfTwoLeaves: true, SCChunk: 2}} {
		doc, _ := buildFuzzTree()
		l, err := Scheme{Opts: opts}.New(doc)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := l.Marshal(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("PRIMELBL\x01"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Unmarshal(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := l.Check(); err != nil {
			t.Fatalf("accepted stream fails Check: %v", err)
		}
	})
}

func buildFuzzTree() (*xmltree.Document, struct{}) {
	r := xmltree.NewElement("r")
	a := xmltree.NewElement("a")
	b := xmltree.NewElement("b")
	_ = r.AppendChild(a)
	_ = r.AppendChild(b)
	_ = a.AppendChild(xmltree.NewElement("c"))
	return xmltree.NewDocument(r), struct{}{}
}
