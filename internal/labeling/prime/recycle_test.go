package prime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

// Sustained churn at constant live size: with recycling the maximum label
// stays bounded; without it the labels keep growing as primes are retired.
func TestRecyclingBoundsLabelGrowth(t *testing.T) {
	churn := func(recycle bool) int {
		root := xmltree.NewElement("r")
		for i := 0; i < 20; i++ {
			_ = root.AppendChild(xmltree.NewElement("c"))
		}
		doc := xmltree.NewDocument(root)
		l, err := Scheme{Opts: Options{RecyclePrimes: recycle}}.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			kids := root.ElementChildren()
			if err := l.Delete(kids[0]); err != nil {
				t.Fatal(err)
			}
			if _, err := l.InsertChildAt(root, len(root.Children), xmltree.NewElement("c")); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Check(); err != nil {
			t.Fatal(err)
		}
		return l.MaxLabelBits()
	}
	with := churn(true)
	without := churn(false)
	if with >= without {
		t.Errorf("recycling max bits %d not below retiring max bits %d", with, without)
	}
	// 20 live leaves only ever need the first ~21 primes when recycled.
	if with > 8 {
		t.Errorf("recycled labels grew to %d bits; should stay near the live-size bound", with)
	}
	if without < 12 {
		t.Errorf("non-recycled labels only reached %d bits; churn should have grown them", without)
	}
}

// Recycled labelings must stay correct through a random mix of operations,
// including order tracking (where freed order keys also recycle).
func TestPropertyRecyclingDynamicMix(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for _, opts := range []Options{
		{RecyclePrimes: true},
		{RecyclePrimes: true, PowerOfTwoLeaves: true},
		{RecyclePrimes: true, TrackOrder: true, SCChunk: 3},
		{RecyclePrimes: true, TrackOrder: true, OrderSpacing: 8, PowerOfTwoLeaves: true},
	} {
		doc := randomTree(rng, 25)
		l, err := Scheme{Opts: opts}.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 150; step++ {
			els := xmltree.Elements(doc.Root)
			switch op := rng.Intn(10); {
			case op < 5:
				p := els[rng.Intn(len(els))]
				if _, err := l.InsertChildAt(p, rng.Intn(len(p.ElementChildren())+1), xmltree.NewElement("n")); err != nil {
					t.Fatalf("opts %+v step %d insert: %v", opts, step, err)
				}
			case op < 7:
				tgt := els[rng.Intn(len(els))]
				if tgt == doc.Root {
					continue
				}
				if _, err := l.WrapNode(tgt, xmltree.NewElement("w")); err != nil {
					t.Fatalf("opts %+v step %d wrap: %v", opts, step, err)
				}
			default:
				if len(els) < 8 {
					continue
				}
				v := els[rng.Intn(len(els))]
				if v == doc.Root {
					continue
				}
				if err := l.Delete(v); err != nil {
					t.Fatalf("opts %+v step %d delete: %v", opts, step, err)
				}
			}
			if step%25 == 0 {
				if err := l.Check(); err != nil {
					t.Fatalf("opts %+v step %d: %v", opts, step, err)
				}
			}
		}
		if err := l.Check(); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

// A freed prime must actually be handed out again.
func TestRecycledPrimeIsReused(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Opts: Options{RecyclePrimes: true}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// b has self-label 7 (preorder assignment a=2,c=3,d=5,b=7).
	freed := l.SelfLabelOf(ns["b"]).Uint64()
	if err := l.Delete(ns["b"]); err != nil {
		t.Fatal(err)
	}
	n := xmltree.NewElement("n")
	if _, err := l.InsertChildAt(ns["a"], 0, n); err != nil {
		t.Fatal(err)
	}
	if got := l.SelfLabelOf(n).Uint64(); got != freed {
		t.Errorf("new node self = %d, want recycled %d", got, freed)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
}

// Deleting a subtree frees every prime inside it, smallest reused first.
func TestRecyclePoolOrdering(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Opts: Options{RecyclePrimes: true}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Delete subtree a: frees a=2, c=3, d=5.
	if err := l.Delete(ns["a"]); err != nil {
		t.Fatal(err)
	}
	got := []uint64{}
	for i := 0; i < 3; i++ {
		n := xmltree.NewElement("n")
		if _, err := l.InsertChildAt(ns["r"], 0, n); err != nil {
			t.Fatal(err)
		}
		got = append(got, l.SelfLabelOf(n).Uint64())
	}
	want := []uint64{2, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reuse %d = %d, want %d (smallest-first)", i, got[i], want[i])
		}
	}
}

func TestRecycledPrimeAbove(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Opts: Options{RecyclePrimes: true}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(ns["a"]); err != nil { // frees 2, 3, 5
		t.Fatal(err)
	}
	if p := l.recycledPrimeAbove(3); p != 5 {
		t.Errorf("recycledPrimeAbove(3) = %d, want 5", p)
	}
	// 2 and 3 must still be pooled.
	if p := l.recycledPrime(); p != 2 {
		t.Errorf("pool head = %d, want 2", p)
	}
	if p := l.recycledPrimeAbove(100); p != 0 {
		t.Errorf("recycledPrimeAbove(100) = %d, want 0", p)
	}
}

// The bounded scan must behave exactly like the original pop-everything
// loop: return the smallest pooled prime strictly above min and leave every
// other prime pooled, across random pools and thresholds.
func TestPropertyRecycledPrimeAboveMatchesReference(t *testing.T) {
	// reference is the old semantics, computed on a sorted copy.
	reference := func(pool []uint64, min uint64) uint64 {
		best := uint64(0)
		for _, p := range pool {
			if p > min && (best == 0 || p < best) {
				best = p
			}
		}
		return best
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		pool := make([]uint64, 0, n)
		l := &Labeling{opts: Options{RecyclePrimes: true}}
		for i := 0; i < n; i++ {
			p := uint64(rng.Intn(200) + 2)
			pool = append(pool, p)
			l.freePrime(p)
		}
		min := uint64(rng.Intn(220))
		want := reference(pool, min)
		if got := l.recycledPrimeAbove(min); got != want {
			t.Fatalf("trial %d: recycledPrimeAbove(%d) = %d, want %d (pool %v)", trial, min, got, want, pool)
		}
		if want != 0 {
			// Exactly the returned prime left the pool; the rest, including
			// everything at or below min, must still be handed out later.
			remaining := map[uint64]int{}
			for _, p := range pool {
				remaining[p]++
			}
			remaining[want]--
			drained := map[uint64]int{}
			for l.free.Len() > 0 {
				drained[l.recycledPrime()]++
			}
			for p, c := range remaining {
				if drained[p] != c {
					t.Fatalf("trial %d: prime %d pooled %d times after scan, want %d", trial, p, drained[p], c)
				}
			}
		}
	}
}

// benchRecyclePool builds a labeling whose free pool holds n odd values,
// none of which qualify above the returned threshold.
func benchRecyclePool(n int) (*Labeling, uint64) {
	l := &Labeling{opts: Options{RecyclePrimes: true}}
	for i := n; i > 0; i-- {
		heap.Push(&l.free, uint64(2*i+1))
	}
	return l, uint64(2*n + 2)
}

// BenchmarkRecycledPrimeAbove guards the bounded-scan implementation. The
// miss case (no pooled prime qualifies) is the old implementation's worst
// case — it popped and re-pushed the whole heap, O(n log n) sifts per
// insert; the scan does zero heap operations. The hit case removes exactly
// one element. Both must stay linear-time with small constants; a
// regression back to sift-heavy behavior shows up directly in ns/op.
func BenchmarkRecycledPrimeAbove(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		l, ceiling := benchRecyclePool(n)
		b.Run(fmt.Sprintf("miss/pool=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if p := l.recycledPrimeAbove(ceiling); p != 0 {
					b.Fatalf("unexpected hit %d", p)
				}
			}
		})
		b.Run(fmt.Sprintf("hit/pool=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := l.recycledPrimeAbove(ceiling - 3)
				if p == 0 {
					b.Fatal("expected hit")
				}
				heap.Push(&l.free, p)
			}
		})
	}
}

func TestRecyclingOffKeepsPoolEmpty(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	before := l.src.Issued()
	if err := l.Delete(ns["b"]); err != nil {
		t.Fatal(err)
	}
	if _, err := l.InsertChildAt(ns["a"], 0, xmltree.NewElement("n")); err != nil {
		t.Fatal(err)
	}
	if l.src.Issued() != before+1 {
		t.Error("without recycling, the source should mint a fresh prime")
	}
	if l.free.Len() != 0 {
		t.Error("pool should stay empty with recycling off")
	}
}
