package prime

import (
	"math/big"
	"math/rand"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

func TestBottomUpBasic(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := BottomUpScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Leaves in preorder: c=2, d=3, b=5. a = 2*3 = 6, r = 6*5 = 30.
	want := map[string]int64{"c": 2, "d": 3, "b": 5, "a": 6, "r": 30}
	for name, w := range want {
		if got := l.LabelOf(ns[name]); got.Int64() != w {
			t.Errorf("label(%s) = %v, want %d", name, got, w)
		}
	}
	// Property 2, bottom-up direction: label(x) mod label(y) == 0.
	if !l.IsAncestor(ns["r"], ns["c"]) || !l.IsAncestor(ns["a"], ns["d"]) {
		t.Error("ancestor relations missing")
	}
	if l.IsAncestor(ns["a"], ns["b"]) || l.IsAncestor(ns["c"], ns["a"]) {
		t.Error("false ancestor relations")
	}
}

func TestBottomUpSingleChildHandling(t *testing.T) {
	// r → a → leaf: without special handling r and a would share a label.
	r := xmltree.NewElement("r")
	a := xmltree.NewElement("a")
	leaf := xmltree.NewElement("leaf")
	_ = r.AppendChild(a)
	_ = a.AppendChild(leaf)
	l, err := BottomUpScheme{}.New(xmltree.NewDocument(r))
	if err != nil {
		t.Fatal(err)
	}
	if l.LabelOf(r).Cmp(l.LabelOf(a)) == 0 {
		t.Error("single-child chain produced duplicate labels")
	}
	if !l.IsAncestor(r, a) || !l.IsAncestor(a, leaf) || !l.IsAncestor(r, leaf) {
		t.Error("chain ancestry broken")
	}
	if l.IsAncestor(a, r) || l.IsAncestor(leaf, a) {
		t.Error("reversed ancestry reported")
	}
}

func TestBottomUpAgainstTree(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		doc := randomTree(rng, 60)
		l, err := BottomUpScheme{}.Label(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// The bottom-up drawback the paper calls out: root labels grow with tree
// size, so the bottom-up maximum is (much) larger than the top-down one.
func TestBottomUpLabelsLargerThanTopDown(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	doc := randomTree(rng, 300)
	bu, err := BottomUpScheme{}.New(doc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	td, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if bu.MaxLabelBits() <= td.MaxLabelBits() {
		t.Errorf("bottom-up max bits %d not above top-down %d", bu.MaxLabelBits(), td.MaxLabelBits())
	}
}

// Insertion relabels the whole ancestor chain — the reason the paper
// prefers top-down for dynamic documents.
func TestBottomUpInsertRelabelsAncestors(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := BottomUpScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	oldB := l.LabelOf(ns["b"])
	count, err := l.InsertChildAt(ns["a"], 0, xmltree.NewElement("new"))
	if err != nil {
		t.Fatal(err)
	}
	// new node + a + r = 3.
	if count != 3 {
		t.Errorf("relabel count = %d, want 3", count)
	}
	if l.LabelOf(ns["b"]).Cmp(oldB) != 0 {
		t.Error("sibling subtree should be untouched")
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Error(err)
	}
}

func TestBottomUpWrapAndDelete(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := BottomUpScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	w := xmltree.NewElement("w")
	if _, err := l.WrapNode(ns["a"], w); err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(ns["a"]); err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Before(ns["b"], w); err != labeling.ErrOrderUnsupported {
		t.Errorf("Before err = %v, want ErrOrderUnsupported", err)
	}
	if err := l.Delete(doc.Root); err != xmltree.ErrIsRoot {
		t.Errorf("delete root err = %v", err)
	}
}

func TestBottomUpIsParent(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := BottomUpScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsParent(ns["a"], ns["c"]) {
		t.Error("IsParent(a,c) = false")
	}
	if l.IsParent(ns["r"], ns["c"]) {
		t.Error("IsParent(r,c) = true (grandparent)")
	}
}

func TestBottomUpLabelOfUnlabeled(t *testing.T) {
	doc, _ := buildTree(t)
	l, err := BottomUpScheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if l.LabelOf(xmltree.NewElement("ghost")) != nil {
		t.Error("ghost node has a label")
	}
	if l.LabelBits(xmltree.NewElement("ghost")) != 0 {
		t.Error("ghost node has label bits")
	}
	var zero *big.Int
	_ = zero
}
