package prime

import (
	"math/rand"
	"testing"

	"primelabel/internal/xmltree"
)

// Figure 6: book with three authors collapses to book/author.
func TestCollapsePathsFigure6(t *testing.T) {
	book := xmltree.NewElement("book")
	for i := 0; i < 3; i++ {
		_ = book.AppendChild(xmltree.NewElement("author"))
	}
	_ = book.AppendChild(xmltree.NewElement("title"))
	doc := xmltree.NewDocument(book)
	ptree, mapping := CollapsePaths(doc)
	st := xmltree.ComputeStats(ptree)
	if st.Nodes != 3 { // book, author, title
		t.Errorf("path tree nodes = %d, want 3", st.Nodes)
	}
	authors := xmltree.ElementsByName(doc.Root, "author")
	for _, a := range authors[1:] {
		if mapping[a] != mapping[authors[0]] {
			t.Error("authors map to different path classes")
		}
	}
	title := xmltree.ElementsByName(doc.Root, "title")[0]
	if mapping[title] == mapping[authors[0]] {
		t.Error("title shares the author class")
	}
}

func TestCollapseNestedRepeats(t *testing.T) {
	// catalog/book/author repeated: 2 books × 2 authors = 7 nodes → 3 classes.
	catalog := xmltree.NewElement("catalog")
	for i := 0; i < 2; i++ {
		b := xmltree.NewElement("book")
		_ = catalog.AppendChild(b)
		for j := 0; j < 2; j++ {
			_ = b.AppendChild(xmltree.NewElement("author"))
		}
	}
	ptree, _ := CollapsePaths(xmltree.NewDocument(catalog))
	if n := xmltree.ComputeStats(ptree).Nodes; n != 3 {
		t.Errorf("path tree nodes = %d, want 3", n)
	}
}

func TestCombinedLabelingShrinksLabels(t *testing.T) {
	// A highly repetitive document — exactly the shape Opt3 targets.
	root := xmltree.NewElement("plays")
	for i := 0; i < 30; i++ {
		play := xmltree.NewElement("play")
		_ = root.AppendChild(play)
		for j := 0; j < 5; j++ {
			act := xmltree.NewElement("act")
			_ = play.AppendChild(act)
			for k := 0; k < 4; k++ {
				_ = act.AppendChild(xmltree.NewElement("scene"))
			}
		}
	}
	doc := xmltree.NewDocument(root)
	flat, err := Scheme{}.New(doc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	comb, err := NewCombined(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if comb.MaxLabelBits() >= flat.MaxLabelBits() {
		t.Errorf("combined bits %d not below flat %d", comb.MaxLabelBits(), flat.MaxLabelBits())
	}
	// The paper reports up to 83% reduction on repetitive data; this corpus
	// is maximally repetitive so expect at least 50%.
	if comb.MaxLabelBits()*2 > flat.MaxLabelBits() {
		t.Errorf("combined bits %d, flat %d: reduction below 50%%", comb.MaxLabelBits(), flat.MaxLabelBits())
	}
}

func TestCombinedClassAncestor(t *testing.T) {
	root := xmltree.NewElement("catalog")
	b1 := xmltree.NewElement("book")
	b2 := xmltree.NewElement("book")
	_ = root.AppendChild(b1)
	_ = root.AppendChild(b2)
	a1 := xmltree.NewElement("author")
	a2 := xmltree.NewElement("author")
	_ = b1.AppendChild(a1)
	_ = b2.AppendChild(a2)
	doc := xmltree.NewDocument(root)
	comb, err := NewCombined(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Class-level: book is an ancestor class of author — for ANY book and
	// author pair, because Opt3 trades node identity for compactness.
	if !comb.ClassAncestor(b1, a1) || !comb.ClassAncestor(b1, a2) {
		t.Error("book class should be an ancestor class of author")
	}
	if comb.ClassAncestor(a1, b1) {
		t.Error("author class must not be an ancestor of book")
	}
	// Position information preserves sibling order.
	if comb.Positions[b1] != 1 || comb.Positions[b2] != 2 {
		t.Errorf("positions = %d,%d; want 1,2", comb.Positions[b1], comb.Positions[b2])
	}
}

func TestCombinedPositionsCoverAllElements(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	doc := randomTree(rng, 100)
	comb, err := NewCombined(doc, Options{PowerOfTwoLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range xmltree.Elements(doc.Root) {
		if comb.Positions[n] < 1 {
			t.Fatalf("node %s has no position", xmltree.PathTo(n))
		}
		if comb.ClassOf[n] == nil {
			t.Fatalf("node %s has no class", xmltree.PathTo(n))
		}
	}
}
