package prime

import "container/heap"

// Prime recycling — an extension beyond the paper.
//
// The paper notes that "each prime number can only be used once", so under
// sustained insert/delete churn the self-labels of new nodes keep growing
// even when the live document stays the same size. Nothing actually
// requires retiring a deleted node's prime forever: divisibility-based
// ancestor tests only need self-labels to be unique among *live* nodes, and
// deletion removes the prime from both the label map and the SC table. With
// Options.RecyclePrimes, freed primes return to a min-heap and are handed
// out again (smallest first) before the source mints new ones, keeping the
// label size bounded by the live-document size instead of the insert count.
// TestRecyclingBoundsLabelGrowth and BenchmarkAblationRecycling measure the
// effect.

// primeHeap is a min-heap of freed primes.
type primeHeap []uint64

func (h primeHeap) Len() int            { return len(h) }
func (h primeHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h primeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *primeHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *primeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// freePrime returns a retired prime to the pool (no-op unless recycling is
// enabled).
func (l *Labeling) freePrime(p uint64) {
	if !l.opts.RecyclePrimes || p == 0 {
		return
	}
	heap.Push(&l.free, p)
}

// recycledPrime pops the smallest pooled prime, or 0 if the pool is empty
// or recycling is off.
func (l *Labeling) recycledPrime() uint64 {
	if !l.opts.RecyclePrimes || l.free.Len() == 0 {
		return 0
	}
	return heap.Pop(&l.free).(uint64)
}

// recycledPrimeAbove pops the smallest pooled prime strictly greater than
// min, or 0 if none qualifies. Smaller pooled primes stay pooled.
func (l *Labeling) recycledPrimeAbove(min uint64) uint64 {
	if !l.opts.RecyclePrimes || l.free.Len() == 0 {
		return 0
	}
	// The heap is only partially ordered, so the smallest qualifying prime
	// needs a linear scan of the slice — but unlike popping and re-pushing
	// every smaller prime (O(n log n) sift work per insert under
	// delete-heavy churn) the scan does zero heap operations when nothing
	// qualifies and exactly one removal when something does.
	best := -1
	for i, p := range l.free {
		if p > min && (best < 0 || p < l.free[best]) {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return heap.Remove(&l.free, best).(uint64)
}
