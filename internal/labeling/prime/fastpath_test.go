package prime

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"primelabel/internal/xmlparse"
	"primelabel/internal/xmltree"
)

// ancestorMatrix snapshots IsAncestor over all element pairs.
func ancestorMatrix(l *Labeling) []bool {
	els := xmltree.Elements(l.doc.Root)
	out := make([]bool, 0, len(els)*len(els))
	for _, a := range els {
		for _, b := range els {
			out = append(out, l.IsAncestor(a, b))
		}
	}
	return out
}

// requireFastPathParity asserts the prefilter changes no answer: the full
// IsAncestor matrix must be identical with the fast path on and off.
func requireFastPathParity(t *testing.T, l *Labeling, when string) {
	t.Helper()
	l.SetFastPath(true)
	fast := ancestorMatrix(l)
	l.SetFastPath(false)
	slow := ancestorMatrix(l)
	l.SetFastPath(true)
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("%s: fast path diverges from exact test at pair %d", when, i)
		}
	}
}

// TestFastPathParityUnderMutation drives random inserts, wraps, and
// deletes through labelings across the option matrix and checks after
// every mutation that the prefilter never flips an IsAncestor answer.
func TestFastPathParityUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, opts := range optionMatrix {
		doc := randomTree(rng, 40)
		l, err := Scheme{Opts: opts}.New(doc)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		requireFastPathParity(t, l, fmt.Sprintf("opts %+v initial", opts))
		for step := 0; step < 30; step++ {
			els := xmltree.Elements(doc.Root)
			target := els[rng.Intn(len(els))]
			var werr error
			switch op := rng.Intn(4); {
			case op <= 1: // insert twice as often as wrap/delete
				_, werr = l.InsertChildAt(target, rng.Intn(len(target.Children)+1), xmltree.NewElement("ins"))
			case op == 2:
				if target != doc.Root {
					_, werr = l.WrapNode(target, xmltree.NewElement("wrap"))
				}
			default:
				if target != doc.Root {
					werr = l.Delete(target)
				}
			}
			if werr != nil {
				t.Fatalf("opts %+v step %d: %v", opts, step, werr)
			}
			if err := l.Check(); err != nil {
				t.Fatalf("opts %+v step %d: %v", opts, step, err)
			}
			requireFastPathParity(t, l, fmt.Sprintf("opts %+v step %d", opts, step))
		}
	}
}

// TestFastPathSurvivesUnmarshal checks the depth/signature state is
// rederived on load: a labeling round-tripped through Marshal/Unmarshal
// answers identically with the prefilter on and off.
func TestFastPathSurvivesUnmarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doc := randomTree(rng, 60)
	l, err := Scheme{Opts: Options{TrackOrder: true, PowerOfTwoLeaves: true}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // mutate so labels aren't regenerable
		els := xmltree.Elements(doc.Root)
		if _, err := l.InsertChildAt(els[rng.Intn(len(els))], 0, xmltree.NewElement("x")); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := l.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireFastPathParity(t, got, "after unmarshal")
}

// deepDoc builds `chains` independent root branches, each a nested chain
// of `depth` sections with `leaves` leaf paragraphs at the bottom level —
// deep enough that labels overflow 64 bits and the exact test goes
// through big.Int.
func deepDoc(t *testing.T, chains, depth, leaves int) *xmltree.Document {
	t.Helper()
	var b strings.Builder
	b.WriteString("<doc>")
	for c := 0; c < chains; c++ {
		for d := 0; d < depth; d++ {
			b.WriteString("<sec>")
		}
		for p := 0; p < leaves; p++ {
			b.WriteString("<para/>")
		}
		for d := 0; d < depth; d++ {
			b.WriteString("</sec>")
		}
	}
	b.WriteString("</doc>")
	doc, err := xmlparse.ParseDocument(strings.NewReader(b.String()), xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestAncestorStatsAndRejectRatio verifies the counters add up — every
// call lands in exactly one bucket, confirmed ancestries match the tree —
// and that on a deep document the prefilter absorbs at least 90% of the
// non-ancestor pairs (the acceptance bar the query bench measures at
// scale).
func TestAncestorStatsAndRejectRatio(t *testing.T) {
	doc := deepDoc(t, 8, 10, 12)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	var stats AncestorStats
	l.SetStats(&stats)
	els := xmltree.Elements(doc.Root)
	calls, trueCount := 0, 0
	for _, a := range els {
		for _, b := range els {
			calls++
			if l.IsAncestor(a, b) {
				trueCount++
			}
		}
	}
	rej := stats.PrefilterRejects.Load()
	u64 := stats.ExactU64.Load()
	big := stats.ExactBig.Load()
	if got := rej + u64 + big; got != uint64(calls) {
		// Every pair must be counted once: prefilter reject or exact test.
		// (No unlabeled nodes and no Opt2 in this document, so no other
		// early exits apply; equal-bit-length non-divisors would be the
		// only leak and the prefilter's depth check catches those first.)
		t.Errorf("counted %d outcomes for %d calls (rej=%d u64=%d big=%d)", got, calls, rej, u64, big)
	}
	if got := stats.ExactTrue.Load(); got != uint64(trueCount) {
		t.Errorf("ExactTrue = %d, want %d", got, trueCount)
	}
	if ratio := stats.RejectRatio(); ratio < 0.9 {
		t.Errorf("prefilter reject ratio = %.3f, want >= 0.9", ratio)
	}
	if l.MaxLabelBits() <= 64 {
		t.Errorf("deep document labels fit in 64 bits (max %d) — test shape too shallow", l.MaxLabelBits())
	}
}
