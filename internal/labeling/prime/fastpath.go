package prime

// Fast ancestor test: constant-time prefilters that reject most
// non-ancestor pairs before the exact divisibility check runs.
//
// The exact test (Property 2) divides two big integers. On deep documents
// labels overflow 64 bits and every IsAncestor call pays a big.Int Rem —
// the dominant cost of descendant-axis queries, which probe |candidates|
// pairs per context node. Following the fixed-width ancestry-labeling
// results of Dahlgaard et al. and Fraigniaud & Korman (see DESIGN.md §9),
// each node caches three machine-word summaries of its root path at
// labeling time:
//
//   - depth: a proper ancestor is strictly shallower;
//   - label bit length: a divisor is never longer than its multiple;
//   - a 128-bit path signature: a Bloom filter over the self-labels on
//     the node's root path. label(a) divides label(b) only if every
//     self-label factor of a also appears in b's root path, so
//     sig(a) ⊄ sig(b) proves non-ancestry.
//
// All three are one-sided: they only ever reject pairs the exact test
// would also reject, never accept. Pairs that survive fall through to the
// exact uint64 or big.Int division, so query results are byte-identical
// with the fast path on or off.

import (
	"math/big"
	"sync"
	"sync/atomic"
)

// pathSig is a 128-bit Bloom filter over the self-labels on a node's root
// path; k=2 bit positions are set per self-label. An ancestor's root path
// is a prefix of its descendant's, so sig(ancestor) ⊆ sig(descendant) —
// any signature bit of a missing from b proves a is not an ancestor of b.
type pathSig [2]uint64

// add sets the two filter bits for one self-label key.
func (s *pathSig) add(key uint64) {
	h := splitmix64(key)
	s[(h>>6)&1] |= 1 << (h & 63)
	h = splitmix64(h)
	s[(h>>6)&1] |= 1 << (h & 63)
}

// subsetOf reports whether every bit of s is also set in t.
func (s pathSig) subsetOf(t pathSig) bool {
	return s[0]&^t[0] == 0 && s[1]&^t[1] == 0
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap
// avalanche mix spreading self-label keys uniformly over filter bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sigKey returns the self-label value fed into the path signature: the
// prime self-label, or (for power-of-two leaves) the exponent mapped into
// a range disjoint from the primes. The root contributes no key.
func (nl *nodeLabel) sigKey() uint64 {
	if nl.selfPrime != 0 {
		return nl.selfPrime
	}
	return ^uint64(uint(nl.exp))
}

// deriveFrom computes nl's full label and fast-path state (depth and path
// signature) from its parent's label state. The self-label fields
// (selfPrime/exp, and a reset selfCache if they changed) must be final
// before the call. A nil parent labels the root: label 1, depth 0, empty
// signature.
func (nl *nodeLabel) deriveFrom(parent *nodeLabel) {
	if parent == nil {
		nl.depth = 0
		nl.sig = pathSig{}
		nl.setLabel(big.NewInt(1))
		return
	}
	nl.depth = parent.depth + 1
	nl.sig = parent.sig
	nl.sig.add(nl.sigKey())
	nl.setLabel(new(big.Int).Mul(parent.label, nl.selfBig()))
}

// AncestorStats counts IsAncestor outcomes with atomic counters so
// concurrent query shards can share one instance. A nil *AncestorStats on
// a Labeling disables counting entirely. Counters are monotonic; readers
// use Load on each field or the derived RejectRatio.
type AncestorStats struct {
	// PrefilterRejects counts pairs rejected by the depth, bit-length, or
	// path-signature prefilter — no division of any kind ran.
	PrefilterRejects atomic.Uint64
	// ExactU64 counts exact tests answered by one uint64 modulo (both
	// labels fit in a machine word).
	ExactU64 atomic.Uint64
	// ExactBig counts exact tests that paid a big.Int Rem.
	ExactBig atomic.Uint64
	// ExactTrue counts exact tests that confirmed ancestry.
	ExactTrue atomic.Uint64
}

// RejectRatio returns the fraction of non-ancestor outcomes caught by the
// prefilter before any division ran: rejects / (rejects + exact tests
// that came back false). Returns 0 when no non-ancestor pair has been
// seen.
func (s *AncestorStats) RejectRatio() float64 {
	rej := s.PrefilterRejects.Load()
	exactFalse := s.ExactU64.Load() + s.ExactBig.Load() - s.ExactTrue.Load()
	if rej+exactFalse == 0 {
		return 0
	}
	return float64(rej) / float64(rej+exactFalse)
}

// SetStats installs (or, with nil, removes) the outcome counters bumped
// by IsAncestor and IsParent. Not synchronized with queries: install
// before the labeling is shared across goroutines, or while holding the
// caller's write lock.
func (l *Labeling) SetStats(s *AncestorStats) { l.stats = s }

// SetFastPath enables or disables the constant-time ancestor prefilter
// (enabled by default). Results are identical either way; disabling
// exists so benchmarks can measure the exact-test baseline. Not
// synchronized with queries — same discipline as SetStats.
func (l *Labeling) SetFastPath(enabled bool) { l.fastPath = enabled }

// remPool recycles the scratch big.Int used by the exact Rem/Quo path, so
// steady-state IsAncestor calls allocate nothing.
var remPool = sync.Pool{New: func() any { return new(big.Int) }}
