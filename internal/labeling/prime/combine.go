package prime

import (
	"primelabel/internal/xmltree"
)

// Opt3 — combining repeated paths (Section 3.2, Figure 6).
//
// Many real-world documents repeat the same tag path (book/author,
// book/author, …). Opt3 collapses all siblings with the same tag into one
// node of a "path tree", labels the collapsed tree, and lets every original
// node share its path-class label; sibling position is kept as separate
// order information at the leaves. The collapsed tree is usually a small
// fraction of the document, so the maximum label shrinks accordingly — the
// paper reports up to 83%.
//
// Collapsed labels identify path classes, not individual nodes, so Opt3 is
// a storage-size optimization: the ancestor test over collapsed labels
// answers "is some node of class A an ancestor of some node of class B",
// which matches its use in path-pattern evaluation. The comparative
// experiments therefore use Opt3 only for the size measurement (Figure 13),
// exactly as the paper does.

// CollapsePaths returns the path tree of doc: one node per distinct tag
// path, preserving the tag structure. The mapping from each original
// element to its path-tree node is returned alongside.
func CollapsePaths(doc *xmltree.Document) (*xmltree.Document, map[*xmltree.Node]*xmltree.Node) {
	mapping := make(map[*xmltree.Node]*xmltree.Node)
	croot := xmltree.NewElement(doc.Root.Name)
	mapping[doc.Root] = croot
	// childClass[c][tag] is the collapsed child of class c for that tag; it
	// must persist across all original nodes of class c so that e.g. the
	// authors of different books share one book/author class.
	childClass := make(map[*xmltree.Node]map[string]*xmltree.Node)
	var walk func(orig, coll *xmltree.Node)
	walk = func(orig, coll *xmltree.Node) {
		byTag := childClass[coll]
		if byTag == nil {
			byTag = make(map[string]*xmltree.Node)
			childClass[coll] = byTag
		}
		for _, c := range orig.Children {
			if c.Kind != xmltree.ElementNode {
				continue
			}
			cc, ok := byTag[c.Name]
			if !ok {
				cc = xmltree.NewElement(c.Name)
				_ = coll.AppendChild(cc)
				byTag[c.Name] = cc
			}
			mapping[c] = cc
			walk(c, cc)
		}
	}
	walk(doc.Root, croot)
	return xmltree.NewDocument(croot), mapping
}

// CombinedLabeling is the Opt3 measurement artifact: the path tree, its
// prime labeling, and the original→class mapping.
type CombinedLabeling struct {
	Original  *xmltree.Document
	PathTree  *xmltree.Document
	ClassOf   map[*xmltree.Node]*xmltree.Node
	Labels    *Labeling
	Positions map[*xmltree.Node]int // 1-based position among same-tag siblings
}

// NewCombined collapses doc's repeated paths and labels the path tree with
// the given options (typically the Opt1+Opt2 configuration, making the
// measurement cumulative as in Figure 13).
func NewCombined(doc *xmltree.Document, opts Options) (*CombinedLabeling, error) {
	ptree, mapping := CollapsePaths(doc)
	lab, err := (Scheme{Opts: opts}).New(ptree)
	if err != nil {
		return nil, err
	}
	positions := make(map[*xmltree.Node]int)
	xmltree.WalkElements(doc.Root, func(n *xmltree.Node) bool {
		count := make(map[string]int)
		for _, c := range n.Children {
			if c.Kind != xmltree.ElementNode {
				continue
			}
			count[c.Name]++
			positions[c] = count[c.Name]
		}
		return true
	})
	positions[doc.Root] = 1
	return &CombinedLabeling{
		Original:  doc,
		PathTree:  ptree,
		ClassOf:   mapping,
		Labels:    lab,
		Positions: positions,
	}, nil
}

// MaxLabelBits returns the fixed-length label size of the collapsed
// labeling — the Figure 13 "Opt3" series.
func (c *CombinedLabeling) MaxLabelBits() int { return c.Labels.MaxLabelBits() }

// ClassAncestor reports whether a's path class is an ancestor class of b's
// path class.
func (c *CombinedLabeling) ClassAncestor(a, b *xmltree.Node) bool {
	return c.Labels.IsAncestor(c.ClassOf[a], c.ClassOf[b])
}
