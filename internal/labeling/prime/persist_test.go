package prime

import (
	"bytes"
	"math/rand"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

func roundTrip(t *testing.T, l *Labeling) *Labeling {
	t.Helper()
	var buf bytes.Buffer
	if err := l.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestPersistRoundTripStatic(t *testing.T) {
	for _, opts := range optionMatrix {
		doc, _ := buildTree(t)
		l, err := Scheme{Opts: opts}.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		back := roundTrip(t, l)
		if !xmltree.Equal(l.doc.Root, back.doc.Root) {
			t.Fatalf("opts %+v: tree mismatch", opts)
		}
		// Labels must match node-for-node.
		a := xmltree.Elements(l.doc.Root)
		b := xmltree.Elements(back.doc.Root)
		for i := range a {
			if l.LabelOf(a[i]).Cmp(back.LabelOf(b[i])) != 0 {
				t.Fatalf("opts %+v: label %d differs", opts, i)
			}
		}
		if err := back.Check(); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

// The real test: mutate, persist, restore, keep mutating — allocation and
// order state must continue exactly where they stopped.
func TestPersistContinuesAfterMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	opts := Options{TrackOrder: true, SCChunk: 3, PowerOfTwoLeaves: true, ReservedPrimes: -1, RecyclePrimes: true}
	doc := randomTree(rng, 30)
	l, err := Scheme{Opts: opts}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(l *Labeling, steps int) {
		for i := 0; i < steps; i++ {
			els := xmltree.Elements(l.doc.Root)
			switch rng.Intn(3) {
			case 0, 1:
				p := els[rng.Intn(len(els))]
				if _, err := l.InsertChildAt(p, rng.Intn(len(p.ElementChildren())+1), xmltree.NewElement("n")); err != nil {
					t.Fatal(err)
				}
			default:
				if len(els) < 8 {
					continue
				}
				v := els[rng.Intn(len(els))]
				if v == l.doc.Root {
					continue
				}
				if err := l.Delete(v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	mutate(l, 50)
	back := roundTrip(t, l)
	// Continue mutating the restored labeling; all invariants must hold.
	mutate(back, 50)
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(back); err != nil {
		t.Fatal(err)
	}
	// The restored source must not re-issue primes already in use: fresh
	// self-labels are unique, which Check verified above; additionally the
	// issued counter must have carried over.
	if back.src.Issued() <= l.src.Issued()-50 {
		t.Errorf("issued counter regressed: %d vs %d", back.src.Issued(), l.src.Issued())
	}
}

func TestPersistOrderSurvives(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Opts: Options{TrackOrder: true, SCChunk: 2}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	mid := xmltree.NewElement("mid")
	if _, err := l.InsertChildAt(ns["a"], 1, mid); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, l)
	els := xmltree.Elements(back.doc.Root)
	prev := -1
	for _, n := range els {
		if n == back.doc.Root {
			continue
		}
		o, err := back.OrderOf(n)
		if err != nil {
			t.Fatal(err)
		}
		if o <= prev {
			t.Fatalf("restored order not increasing at %s", xmltree.PathTo(n))
		}
		prev = o
	}
}

func TestPersistTextAndAttrs(t *testing.T) {
	root := xmltree.NewElement("r")
	root.SetAttr("lang", "en")
	c := xmltree.NewElement("c")
	c.SetAttr("id", "x1")
	_ = root.AppendChild(c)
	_ = c.AppendChild(xmltree.NewText("hello <world> & more"))
	l, err := Scheme{}.New(xmltree.NewDocument(root))
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, l)
	bc := back.doc.Root.ElementChildren()[0]
	if v, _ := bc.Attr("id"); v != "x1" {
		t.Errorf("attr lost: %q", v)
	}
	if bc.Text() != "hello <world> & more" {
		t.Errorf("text lost: %q", bc.Text())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a labeled document"),
		[]byte("PRIMELBL\x02rest"), // wrong version
		append(append([]byte{}, magic...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
	}
	for i, data := range cases {
		if _, err := Unmarshal(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncations of a valid stream must all fail, never panic or succeed
	// with an inconsistent labeling.
	doc, _ := buildTree(t)
	l, err := Scheme{Opts: Options{TrackOrder: true}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 3 {
		if _, err := Unmarshal(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestUnmarshalRejectsTamperedLabels(t *testing.T) {
	doc, _ := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip bytes throughout the payload; every mutation must either fail
	// to parse or fail the consistency check — silent acceptance of a
	// *different* labeling is only acceptable if it is itself consistent.
	rejected, accepted := 0, 0
	for i := len(magic); i < len(data); i++ {
		tampered := append([]byte(nil), data...)
		tampered[i] ^= 0x01
		back, err := Unmarshal(bytes.NewReader(tampered))
		if err != nil {
			rejected++
			continue
		}
		accepted++
		if cerr := back.Check(); cerr != nil {
			t.Fatalf("byte %d: tampered stream produced inconsistent labeling: %v", i, cerr)
		}
	}
	if rejected == 0 {
		t.Error("no tampered stream was rejected; validation seems absent")
	}
}
