package prime

import (
	"fmt"

	"primelabel/internal/xmltree"
)

// validateFresh checks that n is a childless, parentless element that has
// never been labeled — the unit of insertion.
func (l *Labeling) validateFresh(n *xmltree.Node) error {
	if n == nil {
		return xmltree.ErrNilNode
	}
	if n.Kind != xmltree.ElementNode {
		return ErrNotElement
	}
	if n.Parent != nil {
		return xmltree.ErrHasParent
	}
	if len(n.Children) > 0 {
		return fmt.Errorf("prime: inserted nodes must be childless (insert descendants afterwards)")
	}
	if _, ok := l.labels[n]; ok {
		return ErrHasLabel
	}
	return nil
}

// orderBounds returns the order numbers of the elements surrounding a
// just-inserted node n in document order (0 for a missing neighbor).
// Positions cannot be used directly because deletions — and sparse spacing
// — leave gaps in the order numbering. Both neighbors are found by local
// tree navigation (previous sibling's deepest descendant, first child, or
// an ancestor's following sibling), so the cost is O(depth + fan-in) per
// update, not a walk over the whole document.
func (l *Labeling) orderBounds(n *xmltree.Node) (prev, next int, err error) {
	if p := precedingElement(n, l.doc.Root); p != nil {
		if prev, err = l.OrderOf(p); err != nil {
			return 0, 0, err
		}
	}
	if s := followingElement(n); s != nil {
		if next, err = l.OrderOf(s); err != nil {
			return 0, 0, err
		}
	}
	return prev, next, nil
}

// precedingElement returns n's preorder predecessor element, or nil when
// the predecessor is root (which carries no order number) or absent.
func precedingElement(n, root *xmltree.Node) *xmltree.Node {
	p := n.Parent
	if p == nil {
		return nil
	}
	for i := p.ChildIndex(n) - 1; i >= 0; i-- {
		c := p.Children[i]
		if c.Kind != xmltree.ElementNode {
			continue
		}
		// The predecessor is the deepest last element in this subtree.
		for {
			last := lastElementChild(c)
			if last == nil {
				return c
			}
			c = last
		}
	}
	if p == root {
		return nil
	}
	return p
}

func lastElementChild(n *xmltree.Node) *xmltree.Node {
	for i := len(n.Children) - 1; i >= 0; i-- {
		if n.Children[i].Kind == xmltree.ElementNode {
			return n.Children[i]
		}
	}
	return nil
}

// followingElement returns n's preorder successor element: its first
// element child, or the nearest following element sibling of n or of one
// of its ancestors.
func followingElement(n *xmltree.Node) *xmltree.Node {
	for _, c := range n.Children {
		if c.Kind == xmltree.ElementNode {
			return c
		}
	}
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		p := cur.Parent
		for _, c := range p.Children[p.ChildIndex(cur)+1:] {
			if c.Kind == xmltree.ElementNode {
				return c
			}
		}
	}
	return nil
}

// insertTracked registers a freshly labeled node in the SC table between
// the given neighbor order numbers and returns the number of SC records
// updated. Re-keyed nodes (including the new one) have their order keys
// swapped in place.
func (l *Labeling) insertTracked(n *xmltree.Node, prev, next int) (int, error) {
	nl := l.labels[n]
	key := nl.selfPrime
	if key == 0 {
		// No prime self-label (power-of-two leaf): draw a dedicated order
		// key; InsertBetween re-keys it further if the order demands.
		if key = l.recycledPrime(); key == 0 {
			key = l.src.Next()
		}
	}
	updated, rekeys, err := l.sct.InsertBetween(key, prev, next)
	if err != nil {
		return 0, fmt.Errorf("prime: SC table insert: %w", err)
	}
	for _, kc := range rekeys {
		if kc.Old == key {
			key = kc.New
			continue
		}
		node, ok := l.byKey[kc.Old]
		if !ok {
			continue
		}
		delete(l.byKey, kc.Old)
		l.byKey[kc.New] = node
		// A retired order key is reusable only if it was a dedicated key;
		// a self-label doubling as order key stays in use as a label.
		if l.labels[node].selfPrime != kc.Old {
			l.freePrime(kc.Old)
		}
		l.labels[node].orderKey = kc.New
	}
	nl.orderKey = key
	l.byKey[key] = n
	return updated, nil
}

// InsertChildAt implements labeling.Labeling. A fresh element n becomes the
// idx-th child of parent. Existing labels never change, with one exception
// the paper calls out in Section 5.3: under Opt2 a parent that was a
// power-of-two leaf must be converted to a prime self-label, so the
// optimized scheme relabels 2 nodes (the new node and its parent) where the
// original scheme relabels only the new node.
func (l *Labeling) InsertChildAt(parent *xmltree.Node, idx int, n *xmltree.Node) (int, error) {
	pl, ok := l.labels[parent]
	if !ok {
		return 0, fmt.Errorf("prime: insert under unlabeled parent %s", xmltree.PathTo(parent))
	}
	if err := l.validateFresh(n); err != nil {
		return 0, err
	}
	relabeled := 0
	// Opt2 conversion: the parent was a leaf labeled 2^k and now becomes an
	// interior node, which must carry an odd (prime) label.
	if pl.exp > 0 {
		pl.exp = 0
		pl.selfPrime = l.nextNonLeafPrime(parent)
		pl.selfCache = nil
		pl.deriveFrom(l.labels[parent.Parent])
		relabeled++
	}
	if err := parent.InsertChildAt(idx, n); err != nil {
		return relabeled, err
	}
	nl := &nodeLabel{}
	l.assignLeafSelf(n, nl)
	nl.deriveFrom(pl)
	l.labels[n] = nl
	relabeled++
	if l.sct != nil {
		prev, next, err := l.orderBounds(n)
		if err != nil {
			return relabeled, err
		}
		updated, err := l.insertTracked(n, prev, next)
		if err != nil {
			return relabeled, err
		}
		// Section 5.4 counts one SC record update as one relabeled node.
		relabeled += updated
	}
	return relabeled, nil
}

// WrapNode implements labeling.Labeling: wrapper takes target's place and
// target becomes its only child (the Figure 17 update). The wrapper's prime
// joins the labels of every node in target's subtree, so the whole subtree
// is relabeled — but nothing outside it.
func (l *Labeling) WrapNode(target, wrapper *xmltree.Node) (int, error) {
	tl, ok := l.labels[target]
	if !ok {
		return 0, fmt.Errorf("prime: wrap of unlabeled node")
	}
	if target == l.doc.Root {
		return 0, xmltree.ErrIsRoot
	}
	if err := l.validateFresh(wrapper); err != nil {
		return 0, err
	}
	parent := target.Parent
	var prevOrd, targetOrd int
	if l.sct != nil {
		var err error
		targetOrd, err = l.OrderOf(target)
		if err != nil {
			return 0, err
		}
		// The wrapper slots in immediately before the target, so its
		// predecessor in document order is the target's.
		if p := precedingElement(target, l.doc.Root); p != nil {
			if prevOrd, err = l.OrderOf(p); err != nil {
				return 0, err
			}
		}
	}
	if err := xmltree.WrapChildren(parent, wrapper, target, target); err != nil {
		return 0, err
	}
	wl := &nodeLabel{selfPrime: l.nextNonLeafPrime(wrapper)}
	wl.deriveFrom(l.labels[parent])
	l.labels[wrapper] = wl
	relabeled := 1
	// Future leaf children of wrapper must not reuse target's exponent.
	if tl.exp > 0 {
		l.power2Count[wrapper] = tl.exp
	}
	// Recompute every label in target's subtree: self-labels are unchanged
	// but each full label now includes the wrapper's prime.
	relabeled += l.relabelSubtree(target)
	if l.sct != nil {
		updated, err := l.insertTracked(wrapper, prevOrd, targetOrd)
		if err != nil {
			return relabeled, err
		}
		relabeled += updated
	}
	return relabeled, nil
}

// relabelSubtree recomputes full labels (and the cached depth/signature
// fast-path state) below a structural change, returning how many nodes
// were touched.
func (l *Labeling) relabelSubtree(n *xmltree.Node) int {
	count := 0
	var walk func(m *xmltree.Node)
	walk = func(m *xmltree.Node) {
		nl := l.labels[m]
		nl.deriveFrom(l.labels[m.Parent])
		count++
		for _, c := range m.Children {
			if c.Kind == xmltree.ElementNode {
				walk(c)
			}
		}
	}
	walk(n)
	return count
}

// Delete implements labeling.Labeling: the subtree rooted at n is removed.
// No other node's label or order number changes (Sections 4.2 and 5.3).
func (l *Labeling) Delete(n *xmltree.Node) error {
	if _, ok := l.labels[n]; !ok {
		return fmt.Errorf("prime: delete of unlabeled node")
	}
	if n == l.doc.Root {
		return xmltree.ErrIsRoot
	}
	for _, m := range xmltree.Elements(n) {
		nl := l.labels[m]
		if l.sct != nil && nl.orderKey != 0 {
			if err := l.sct.Delete(nl.orderKey); err != nil {
				return err
			}
			delete(l.byKey, nl.orderKey)
			if nl.orderKey != nl.selfPrime {
				l.freePrime(nl.orderKey)
			}
		}
		l.freePrime(nl.selfPrime)
		delete(l.labels, m)
		delete(l.power2Count, m)
	}
	n.Detach()
	return nil
}
