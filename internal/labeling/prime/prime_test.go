package prime

import (
	"math/big"
	"math/rand"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

// buildTree makes a small fixed tree:
//
//	r
//	├── a
//	│   ├── c (leaf)
//	│   └── d (leaf)
//	└── b (leaf)
func buildTree(t *testing.T) (*xmltree.Document, map[string]*xmltree.Node) {
	t.Helper()
	r := xmltree.NewElement("r")
	a := xmltree.NewElement("a")
	b := xmltree.NewElement("b")
	c := xmltree.NewElement("c")
	d := xmltree.NewElement("d")
	for _, s := range []struct{ p, c *xmltree.Node }{{r, a}, {r, b}, {a, c}, {a, d}} {
		if err := s.p.AppendChild(s.c); err != nil {
			t.Fatal(err)
		}
	}
	return xmltree.NewDocument(r), map[string]*xmltree.Node{"r": r, "a": a, "b": b, "c": c, "d": d}
}

// randomTree builds a random element tree for property tests.
func randomTree(rng *rand.Rand, n int) *xmltree.Document {
	root := xmltree.NewElement("root")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := xmltree.NewElement("e")
		_ = p.AppendChild(c)
		nodes = append(nodes, c)
	}
	return xmltree.NewDocument(root)
}

var optionMatrix = []Options{
	{},
	{ReservedPrimes: 8},
	{PowerOfTwoLeaves: true},
	{ReservedPrimes: 8, PowerOfTwoLeaves: true},
	{PowerOfTwoLeaves: true, Power2Threshold: 2},
	{TrackOrder: true},
	{TrackOrder: true, SCChunk: 1},
	{TrackOrder: true, SCChunk: 20, PowerOfTwoLeaves: true, ReservedPrimes: 4},
}

func TestTopDownBasicLabels(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LabelOf(ns["r"]); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("root label = %v, want 1", got)
	}
	// Preorder prime assignment: a=2, c=3, d=5, b=7.
	want := map[string]int64{"a": 2, "c": 6, "d": 10, "b": 7}
	for name, w := range want {
		if got := l.LabelOf(ns[name]); got.Int64() != w {
			t.Errorf("label(%s) = %v, want %d", name, got, w)
		}
	}
	if err := l.Check(); err != nil {
		t.Error(err)
	}
}

// The example in the paper's Section 3: the node labeled 10 has
// parent-label 2 and self-label 5.
func TestSelfAndParentLabelDecomposition(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	d := ns["d"] // label 10 under parent labeled 2
	if got := l.SelfLabelOf(d); got.Int64() != 5 {
		t.Errorf("self-label = %v, want 5", got)
	}
	if got := l.LabelOf(d.Parent); got.Int64() != 2 {
		t.Errorf("parent-label = %v, want 2", got)
	}
}

func TestProperty2AllPairsAllOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, opts := range optionMatrix {
		for trial := 0; trial < 10; trial++ {
			doc := randomTree(rng, 80)
			l, err := Scheme{Opts: opts}.Label(doc)
			if err != nil {
				t.Fatalf("opts %+v: %v", opts, err)
			}
			if err := labeling.CheckAgainstTree(l); err != nil {
				t.Fatalf("opts %+v trial %d: %v", opts, trial, err)
			}
		}
	}
}

func TestIsParentAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, opts := range []Options{{}, {PowerOfTwoLeaves: true}} {
		doc := randomTree(rng, 60)
		l, err := Scheme{Opts: opts}.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		els := xmltree.Elements(doc.Root)
		for _, a := range els {
			for _, b := range els {
				want := b.Parent == a
				if got := l.IsParent(a, b); got != want {
					t.Fatalf("opts %+v: IsParent(%s,%s) = %v, want %v",
						opts, xmltree.PathTo(a), xmltree.PathTo(b), got, want)
				}
			}
		}
	}
}

func TestOpt2LeavesArePowersOfTwo(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Opts: Options{PowerOfTwoLeaves: true}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// c and d are leaves under a: self-labels 2^1, 2^2. b is a leaf under
	// r: self-label 2^1 (counter is per parent).
	if got := l.SelfLabelOf(ns["c"]); got.Int64() != 2 {
		t.Errorf("self(c) = %v, want 2", got)
	}
	if got := l.SelfLabelOf(ns["d"]); got.Int64() != 4 {
		t.Errorf("self(d) = %v, want 4", got)
	}
	if got := l.SelfLabelOf(ns["b"]); got.Int64() != 2 {
		t.Errorf("self(b) = %v, want 2", got)
	}
	// Non-leaf a gets an odd prime (2 is never used for interior nodes).
	if got := l.SelfLabelOf(ns["a"]); got.Int64()%2 == 0 {
		t.Errorf("self(a) = %v, want odd", got)
	}
	if err := l.Check(); err != nil {
		t.Error(err)
	}
}

func TestOpt2Threshold(t *testing.T) {
	root := xmltree.NewElement("r")
	for i := 0; i < 6; i++ {
		_ = root.AppendChild(xmltree.NewElement("leaf"))
	}
	doc := xmltree.NewDocument(root)
	l, err := Scheme{Opts: Options{PowerOfTwoLeaves: true, Power2Threshold: 3}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	kids := root.ElementChildren()
	for i := 0; i < 3; i++ {
		if got := l.SelfLabelOf(kids[i]); got.Int64() != 1<<(i+1) {
			t.Errorf("leaf %d self = %v, want %d", i, got, 1<<(i+1))
		}
	}
	for i := 3; i < 6; i++ {
		got := l.SelfLabelOf(kids[i])
		if got.Int64()%2 == 0 {
			t.Errorf("leaf %d beyond threshold: self = %v, want odd prime", i, got)
		}
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Error(err)
	}
}

func TestOpt1UsesSmallPrimesForTopLevel(t *testing.T) {
	// A wide shallow tree where the first top-level subtree consumes many
	// primes: without Opt1 the later top-level nodes get large primes.
	root := xmltree.NewElement("r")
	first := xmltree.NewElement("big")
	_ = root.AppendChild(first)
	for i := 0; i < 50; i++ {
		inner := xmltree.NewElement("x")
		_ = first.AppendChild(inner)
		_ = inner.AppendChild(xmltree.NewElement("y"))
	}
	for i := 0; i < 3; i++ {
		sec := xmltree.NewElement("sec")
		_ = root.AppendChild(sec)
		_ = sec.AppendChild(xmltree.NewElement("z"))
	}
	doc := xmltree.NewDocument(root)

	plain, err := Scheme{}.New(doc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	opt1, err := Scheme{Opts: Options{ReservedPrimes: 4}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	secNodes := xmltree.ElementsByName(doc.Root, "sec")
	for _, sn := range secNodes {
		if got := opt1.SelfLabelOf(sn); got.Int64() > 7 {
			t.Errorf("Opt1 top-level self = %v, want one of the 4 reserved primes", got)
		}
	}
	if opt1.MaxLabelBits() > plain.MaxLabelBits() {
		t.Errorf("Opt1 max bits %d > plain %d", opt1.MaxLabelBits(), plain.MaxLabelBits())
	}
	if err := labeling.CheckAgainstTree(opt1); err != nil {
		t.Error(err)
	}
}

func TestOpt2ReducesLabelSize(t *testing.T) {
	// Leaf-heavy document with moderate fan-out: Opt2 should shrink labels
	// substantially (the paper reports up to 63%). Note Opt2 loses when
	// fan-out is huge — the exponent grows linearly — which the paper
	// acknowledges and the Power2Threshold option mitigates.
	root := xmltree.NewElement("r")
	for i := 0; i < 100; i++ {
		ch := xmltree.NewElement("c")
		_ = root.AppendChild(ch)
		for j := 0; j < 8; j++ {
			_ = ch.AppendChild(xmltree.NewElement("leaf"))
		}
	}
	doc := xmltree.NewDocument(root)
	plain, err := Scheme{}.New(doc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	opt2, err := Scheme{Opts: Options{PowerOfTwoLeaves: true}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if opt2.MaxLabelBits() >= plain.MaxLabelBits() {
		t.Errorf("Opt2 max bits %d not below plain %d", opt2.MaxLabelBits(), plain.MaxLabelBits())
	}
}

func TestInsertLeafDoesNotRelabelOthers(t *testing.T) {
	for _, opts := range optionMatrix {
		doc, ns := buildTree(t)
		l, err := Scheme{Opts: opts}.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		before := map[string]*big.Int{}
		for name, n := range ns {
			before[name] = l.LabelOf(n)
		}
		n := xmltree.NewElement("new")
		if _, err := l.InsertChildAt(ns["a"], 1, n); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		for name, n := range ns {
			if l.LabelOf(n).Cmp(before[name]) != 0 {
				t.Errorf("opts %+v: label(%s) changed from %v to %v",
					opts, name, before[name], l.LabelOf(n))
			}
		}
		if err := l.Check(); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

// Section 5.3 / Figure 16: the original scheme relabels only the new node
// (count 1); with Opt2 the parent of a new node was a 2^k leaf and must be
// converted, so the count is 2.
func TestInsertRelabelCounts(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	count, err := l.InsertChildAt(ns["c"], 0, xmltree.NewElement("u"))
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("original scheme relabel count = %d, want 1", count)
	}

	doc2, ns2 := buildTree(t)
	l2, err := Scheme{Opts: Options{PowerOfTwoLeaves: true}}.New(doc2)
	if err != nil {
		t.Fatal(err)
	}
	count2, err := l2.InsertChildAt(ns2["c"], 0, xmltree.NewElement("u"))
	if err != nil {
		t.Fatal(err)
	}
	if count2 != 2 {
		t.Errorf("Opt2 leaf-parent relabel count = %d, want 2", count2)
	}
	// Inserting under an existing interior node costs 1 even with Opt2.
	count3, err := l2.InsertChildAt(ns2["a"], 0, xmltree.NewElement("v"))
	if err != nil {
		t.Fatal(err)
	}
	if count3 != 1 {
		t.Errorf("Opt2 interior insert relabel count = %d, want 1", count3)
	}
	if err := labeling.CheckAgainstTree(l2); err != nil {
		t.Error(err)
	}
}

func TestInsertValidation(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.InsertChildAt(ns["a"], 0, nil); err == nil {
		t.Error("nil insert should fail")
	}
	if _, err := l.InsertChildAt(ns["a"], 0, xmltree.NewText("t")); err != ErrNotElement {
		t.Errorf("text insert err = %v", err)
	}
	if _, err := l.InsertChildAt(ns["a"], 0, ns["b"].Detach()); err != ErrHasLabel {
		t.Errorf("re-insert of labeled node err = %v", err)
	}
	withKids := xmltree.NewElement("p")
	_ = withKids.AppendChild(xmltree.NewElement("q"))
	if _, err := l.InsertChildAt(ns["a"], 0, withKids); err == nil {
		t.Error("insert of non-childless node should fail")
	}
	outsider := xmltree.NewElement("o")
	if _, err := l.InsertChildAt(outsider, 0, xmltree.NewElement("n")); err == nil {
		t.Error("insert under unlabeled parent should fail")
	}
}

// Figure 17: wrapping a node relabels the wrapper plus exactly the target
// subtree; nothing else changes.
func TestWrapNode(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	labelB := l.LabelOf(ns["b"])
	labelR := l.LabelOf(ns["r"])
	w := xmltree.NewElement("wrap")
	count, err := l.WrapNode(ns["a"], w)
	if err != nil {
		t.Fatal(err)
	}
	// wrapper + subtree {a, c, d} = 4.
	if count != 4 {
		t.Errorf("wrap relabel count = %d, want 4", count)
	}
	if l.LabelOf(ns["b"]).Cmp(labelB) != 0 || l.LabelOf(ns["r"]).Cmp(labelR) != 0 {
		t.Error("wrap relabeled nodes outside the target subtree")
	}
	if ns["a"].Parent != w || w.Parent != ns["r"] {
		t.Error("tree structure after wrap wrong")
	}
	if err := l.Check(); err != nil {
		t.Error(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Error(err)
	}
}

func TestWrapRootFails(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.WrapNode(ns["r"], xmltree.NewElement("w")); err != xmltree.ErrIsRoot {
		t.Errorf("wrap root err = %v, want ErrIsRoot", err)
	}
}

func TestDelete(t *testing.T) {
	for _, opts := range optionMatrix {
		doc, ns := buildTree(t)
		l, err := Scheme{Opts: opts}.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Delete(ns["a"]); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if l.LabelOf(ns["a"]) != nil || l.LabelOf(ns["c"]) != nil {
			t.Error("deleted subtree still labeled")
		}
		if l.LabelOf(ns["b"]) == nil {
			t.Error("sibling lost its label")
		}
		if err := l.Check(); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if err := l.Delete(ns["r"]); err != xmltree.ErrIsRoot {
			t.Errorf("delete root err = %v", err)
		}
	}
}

func TestOrderTracking(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Opts: Options{TrackOrder: true}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Preorder: r(0), a(1), c(2), d(3), b(4).
	wantOrder := map[string]int{"r": 0, "a": 1, "c": 2, "d": 3, "b": 4}
	for name, want := range wantOrder {
		got, err := l.OrderOf(ns[name])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("OrderOf(%s) = %d, want %d", name, got, want)
		}
	}
	if before, err := l.Before(ns["c"], ns["b"]); err != nil || !before {
		t.Errorf("Before(c,b) = %v,%v; want true", before, err)
	}
	if before, err := l.Before(ns["b"], ns["a"]); err != nil || before {
		t.Errorf("Before(b,a) = %v,%v; want false", before, err)
	}
}

func TestOrderUnsupportedWithoutTracking(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Before(ns["a"], ns["b"]); err != labeling.ErrOrderUnsupported {
		t.Errorf("Before err = %v, want ErrOrderUnsupported", err)
	}
}

func TestOrderedInsertMaintainsOrder(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Opts: Options{TrackOrder: true, SCChunk: 2}}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Insert new element between c and d.
	mid := xmltree.NewElement("mid")
	if _, err := l.InsertChildAt(ns["a"], 1, mid); err != nil {
		t.Fatal(err)
	}
	want := []*xmltree.Node{ns["a"], ns["c"], mid, ns["d"], ns["b"]}
	for i := 0; i < len(want)-1; i++ {
		before, err := l.Before(want[i], want[i+1])
		if err != nil {
			t.Fatal(err)
		}
		if !before {
			t.Errorf("order wrong at position %d", i)
		}
	}
	if err := l.Check(); err != nil {
		t.Error(err)
	}
}

func TestPropertyDynamicMixAllOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, opts := range optionMatrix {
		doc := randomTree(rng, 20)
		l, err := Scheme{Opts: opts}.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		live := xmltree.Elements(doc.Root)
		for step := 0; step < 80; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // insert
				p := live[rng.Intn(len(live))]
				n := xmltree.NewElement("n")
				idx := rng.Intn(len(p.ElementChildren()) + 1)
				if _, err := l.InsertChildAt(p, idx, n); err != nil {
					t.Fatalf("opts %+v step %d insert: %v", opts, step, err)
				}
				live = append(live, n)
			case op < 8: // wrap
				target := live[rng.Intn(len(live))]
				if target == doc.Root {
					continue
				}
				w := xmltree.NewElement("w")
				if _, err := l.WrapNode(target, w); err != nil {
					t.Fatalf("opts %+v step %d wrap: %v", opts, step, err)
				}
				live = append(live, w)
			default: // delete
				if len(live) < 5 {
					continue
				}
				victim := live[rng.Intn(len(live))]
				if victim == doc.Root || victim.Parent == nil {
					continue
				}
				if err := l.Delete(victim); err != nil {
					t.Fatalf("opts %+v step %d delete: %v", opts, step, err)
				}
				live = xmltree.Elements(doc.Root)
			}
		}
		if err := l.Check(); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

func TestMaxLabelBitsAndLabelBits(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LabelBits(ns["r"]); got != 1 {
		t.Errorf("root LabelBits = %d, want 1", got)
	}
	// d has label 10 = 0b1010 → 4 bits; max over {1,2,6,10,7} is 4.
	if got := l.MaxLabelBits(); got != 4 {
		t.Errorf("MaxLabelBits = %d, want 4", got)
	}
	if got := l.LabelBits(xmltree.NewElement("ghost")); got != 0 {
		t.Errorf("unlabeled LabelBits = %d, want 0", got)
	}
}
