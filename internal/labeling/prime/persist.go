package prime

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"primelabel/internal/order"
	"primelabel/internal/primes"
	"primelabel/internal/xmltree"
)

// Persistence for prime-labeled documents.
//
// Labels assigned by a static pass are deterministic, but after dynamic
// updates they cannot be regenerated — the whole point of the scheme is
// that inserted nodes keep labels no relabeling pass would produce. Marshal
// therefore captures the complete state: the tree, every node's self-label
// parts and order key, the Figure 7 childNum counters, the prime source's
// resume point, the recycling pool, and the SC table rows. Unmarshal
// rebuilds the labeling and verifies every invariant (Check) before
// returning, so a corrupted or tampered stream cannot produce an
// inconsistent labeling. Full labels are *not* stored — they are products
// of the stored parts and are recomputed in one pass.
//
// The format is a versioned, varint-packed binary stream; it is an internal
// format with no cross-version compatibility promise.

// magic identifies the stream format and version.
var magic = []byte("PRIMELBL\x01")

// ErrBadFormat reports a stream that is not a valid labeled document.
var ErrBadFormat = errors.New("prime: invalid labeled-document stream")

type writer struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (w *writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) uint(v int) { w.uvarint(uint64(v)) }

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

func (w *writer) bool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	w.uvarint(v)
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return v
}

func (r *reader) uint() int { return int(r.uvarint()) }

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > 1<<28 {
		r.err = fmt.Errorf("%w: unreasonable string length %d", ErrBadFormat, n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return ""
	}
	return string(buf)
}

func (r *reader) bool() bool { return r.uvarint() != 0 }

// Marshal writes the labeled document to w.
func (l *Labeling) Marshal(out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	if _, err := w.w.Write(magic); err != nil {
		return err
	}
	// Options.
	o := l.opts
	w.uint(o.ReservedPrimes + 1) // shift so -1 (auto) encodes as 0
	w.bool(o.PowerOfTwoLeaves)
	w.uint(o.Power2Threshold)
	w.bool(o.TrackOrder)
	w.uint(o.SCChunk)
	w.uint(o.OrderSpacing)
	w.bool(o.RecyclePrimes)
	// Tree + per-element label parts, interleaved in preorder.
	l.marshalNode(w, l.doc.Root)
	// childNum counters, keyed by preorder element index.
	idx := xmltree.DocOrderIndex(l.doc)
	w.uint(len(l.power2Count))
	for n, c := range l.power2Count {
		w.uint(idx[n])
		w.uint(c)
	}
	// Prime source.
	next, reserved, issued := l.src.SnapshotState()
	w.uvarint(next)
	w.uint(issued)
	w.uint(len(reserved))
	for _, p := range reserved {
		w.uvarint(p)
	}
	// Recycling pool.
	w.uint(l.free.Len())
	for _, p := range l.free {
		w.uvarint(p)
	}
	// SC table.
	w.bool(l.sct != nil)
	if l.sct != nil {
		chunk, spacing, nextOrd, records := l.sct.Snapshot()
		w.uint(chunk)
		w.uint(spacing)
		w.uint(nextOrd)
		w.uint(len(records))
		for _, ms := range records {
			w.uint(len(ms))
			for _, m := range ms {
				w.uvarint(m.Prime)
				w.uint(m.Order)
			}
		}
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// marshalNode writes one node (and, for elements, its label parts and
// children) in preorder.
func (l *Labeling) marshalNode(w *writer, n *xmltree.Node) {
	if n.Kind == xmltree.TextNode {
		w.uint(1)
		w.str(n.Data)
		return
	}
	w.uint(0)
	w.str(n.Name)
	w.uint(len(n.Attrs))
	for _, a := range n.Attrs {
		w.str(a.Name)
		w.str(a.Value)
	}
	nl := l.labels[n]
	w.uvarint(nl.selfPrime)
	w.uint(nl.exp)
	w.uvarint(nl.orderKey)
	w.uint(len(n.Children))
	for _, c := range n.Children {
		l.marshalNode(w, c)
	}
}

// Unmarshal reads a labeled document produced by Marshal and verifies its
// consistency.
func Unmarshal(in io.Reader) (*Labeling, error) {
	r := &reader{r: bufio.NewReader(in)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r.r, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	var opts Options
	opts.ReservedPrimes = r.uint() - 1
	opts.PowerOfTwoLeaves = r.bool()
	opts.Power2Threshold = r.uint()
	opts.TrackOrder = r.bool()
	opts.SCChunk = r.uint()
	opts.OrderSpacing = r.uint()
	opts.RecyclePrimes = r.bool()

	l := &Labeling{
		opts:        opts,
		labels:      make(map[*xmltree.Node]*nodeLabel),
		byKey:       make(map[uint64]*xmltree.Node),
		power2Count: make(map[*xmltree.Node]int),
		fastPath:    true,
	}
	root, err := l.unmarshalNode(r, nil, true)
	if err != nil {
		return nil, err
	}
	l.doc = xmltree.NewDocument(root)

	elements := xmltree.Elements(root)
	childNumCount := r.uint()
	if r.err != nil {
		return nil, r.err
	}
	if childNumCount < 0 || childNumCount > len(elements) {
		return nil, fmt.Errorf("%w: unreasonable childNum count", ErrBadFormat)
	}
	for i, count := 0, childNumCount; i < count; i++ {
		idx := r.uint()
		v := r.uint()
		if r.err != nil {
			return nil, r.err
		}
		if idx < 0 || idx >= len(elements) {
			return nil, fmt.Errorf("%w: childNum index %d out of range", ErrBadFormat, idx)
		}
		l.power2Count[elements[idx]] = v
	}

	next := r.uvarint()
	issued := r.uint()
	reservedCount := r.uint()
	if r.err != nil {
		return nil, r.err
	}
	if reservedCount < 0 || reservedCount > 1<<20 {
		return nil, fmt.Errorf("%w: unreasonable reserved pool", ErrBadFormat)
	}
	reserved := make([]uint64, reservedCount)
	for i := range reserved {
		reserved[i] = r.uvarint()
	}
	l.src = primes.Resume(next, reserved, issued)

	freeCount := r.uint()
	if r.err != nil {
		return nil, r.err
	}
	if freeCount < 0 || freeCount > 1<<24 {
		return nil, fmt.Errorf("%w: unreasonable free pool", ErrBadFormat)
	}
	for i := 0; i < freeCount; i++ {
		l.free = append(l.free, r.uvarint())
	}
	heap.Init(&l.free)

	if r.bool() {
		chunk := r.uint()
		spacing := r.uint()
		nextOrd := r.uint()
		recordCount := r.uint()
		if r.err != nil {
			return nil, r.err
		}
		if recordCount < 0 || recordCount > 1<<24 {
			return nil, fmt.Errorf("%w: unreasonable record count", ErrBadFormat)
		}
		records := make([][]order.Member, recordCount)
		for i := range records {
			memberCount := r.uint()
			if r.err != nil {
				return nil, r.err
			}
			if memberCount < 0 || memberCount > 1<<20 {
				return nil, fmt.Errorf("%w: unreasonable member count", ErrBadFormat)
			}
			ms := make([]order.Member, memberCount)
			for j := range ms {
				ms[j] = order.Member{Prime: r.uvarint(), Order: r.uint()}
			}
			records[i] = ms
		}
		if r.err != nil {
			return nil, r.err
		}
		tbl, err := order.Restore(chunk, spacing, nextOrd, records, func(min uint64) uint64 {
			for {
				p := l.src.Next()
				if p > min {
					return p
				}
			}
		})
		if err != nil {
			return nil, err
		}
		l.sct = tbl
	}
	if r.err != nil {
		return nil, r.err
	}
	// Rebuild the order-key index and verify everything.
	for _, n := range elements {
		if k := l.labels[n].orderKey; k != 0 {
			l.byKey[k] = n
		}
	}
	if err := l.Check(); err != nil {
		return nil, fmt.Errorf("prime: unmarshaled labeling inconsistent: %w", err)
	}
	return l, nil
}

// unmarshalNode reads one node written by marshalNode. parent is the
// parent's label state (nil for the root), from which the full label and
// the depth/signature fast-path fields are rederived.
func (l *Labeling) unmarshalNode(r *reader, parent *nodeLabel, isRoot bool) (*xmltree.Node, error) {
	kind := r.uint()
	if r.err != nil {
		return nil, r.err
	}
	switch kind {
	case 1:
		if isRoot {
			return nil, fmt.Errorf("%w: text node as root", ErrBadFormat)
		}
		return xmltree.NewText(r.str()), nil
	case 0:
		n := xmltree.NewElement(r.str())
		for i, count := 0, r.uint(); i < count; i++ {
			if r.err != nil {
				return nil, r.err
			}
			n.Attrs = append(n.Attrs, xmltree.Attr{Name: r.str(), Value: r.str()})
		}
		nl := &nodeLabel{
			selfPrime: r.uvarint(),
			exp:       r.uint(),
			orderKey:  r.uvarint(),
		}
		if r.err != nil {
			return nil, r.err
		}
		// A forged exponent would make selfBig allocate 2^exp bits; no
		// legitimate Power2Threshold comes anywhere near this bound.
		if nl.exp < 0 || nl.exp > 1<<16 {
			return nil, fmt.Errorf("%w: unreasonable leaf exponent %d", ErrBadFormat, nl.exp)
		}
		if isRoot && (nl.selfPrime != 0 || nl.exp != 0) {
			return nil, fmt.Errorf("%w: root carries a self-label", ErrBadFormat)
		}
		nl.deriveFrom(parent)
		l.labels[n] = nl
		childCount := r.uint()
		if r.err != nil {
			return nil, r.err
		}
		if childCount > 1<<24 {
			return nil, fmt.Errorf("%w: unreasonable child count", ErrBadFormat)
		}
		for i := 0; i < childCount; i++ {
			c, err := l.unmarshalNode(r, nl, false)
			if err != nil {
				return nil, err
			}
			if err := n.AppendChild(c); err != nil {
				return nil, err
			}
		}
		return n, nil
	default:
		return nil, fmt.Errorf("%w: unknown node kind %d", ErrBadFormat, kind)
	}
}
