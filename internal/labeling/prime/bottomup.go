package prime

import (
	"errors"
	"fmt"
	"math/big"

	"primelabel/internal/labeling"
	"primelabel/internal/primes"
	"primelabel/internal/xmltree"
)

// BottomUpScheme is the Figure 1 variant: leaves receive primes and each
// interior node's label is the product of its children's labels, so
//
//	x is an ancestor of y  ⇔  label(x) mod label(y) == 0
//
// (Property 2 — note the direction is reversed relative to the top-down
// scheme). The paper notes two drawbacks that this implementation makes
// measurable: labels near the root grow with the *total subtree size*
// rather than the depth, and single-child nodes need special handling (here
// an extra fresh prime is folded in so a parent's label differs from its
// only child's). The scheme is static: any insertion relabels the new
// node's full ancestor chain, which the update benchmarks quantify.
type BottomUpScheme struct{}

// Name implements labeling.Scheme.
func (BottomUpScheme) Name() string { return "prime-bottomup" }

// BottomUpLabeling is a bottom-up prime labeled document.
type BottomUpLabeling struct {
	doc    *xmltree.Document
	labels map[*xmltree.Node]*big.Int
	src    *primes.Source
}

var _ labeling.Labeling = (*BottomUpLabeling)(nil)

// Label implements labeling.Scheme.
func (s BottomUpScheme) Label(doc *xmltree.Document) (labeling.Labeling, error) {
	l, err := s.New(doc)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// New labels doc bottom-up and returns the concrete labeling.
func (BottomUpScheme) New(doc *xmltree.Document) (*BottomUpLabeling, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("prime: nil document")
	}
	l := &BottomUpLabeling{
		doc:    doc,
		labels: make(map[*xmltree.Node]*big.Int),
		src:    primes.NewSource(),
	}
	l.assign(doc.Root)
	return l, nil
}

// assign computes the bottom-up label of n: leaves get fresh primes,
// interior nodes the product of their children (times an extra prime for
// single-child nodes so the labels stay distinct).
func (l *BottomUpLabeling) assign(n *xmltree.Node) *big.Int {
	kids := n.ElementChildren()
	if len(kids) == 0 {
		lbl := new(big.Int).SetUint64(l.src.Next())
		l.labels[n] = lbl
		return lbl
	}
	lbl := big.NewInt(1)
	for _, c := range kids {
		lbl.Mul(lbl, l.assign(c))
	}
	if len(kids) == 1 {
		// Special handling for one-child nodes (Section 3): fold in a fresh
		// prime so the parent's label is a proper multiple of the child's.
		lbl.Mul(lbl, new(big.Int).SetUint64(l.src.Next()))
	}
	l.labels[n] = lbl
	return lbl
}

// SchemeName implements labeling.Labeling.
func (l *BottomUpLabeling) SchemeName() string { return "prime-bottomup" }

// Doc implements labeling.Labeling.
func (l *BottomUpLabeling) Doc() *xmltree.Document { return l.doc }

// LabelOf returns n's label (a copy), or nil.
func (l *BottomUpLabeling) LabelOf(n *xmltree.Node) *big.Int {
	lbl, ok := l.labels[n]
	if !ok {
		return nil
	}
	return new(big.Int).Set(lbl)
}

// IsAncestor implements Property 2 for the bottom-up direction.
func (l *BottomUpLabeling) IsAncestor(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	if la.Cmp(lb) == 0 {
		return false
	}
	var r big.Int
	return r.Rem(la, lb).Sign() == 0
}

// IsParent reports whether a is b's parent. Bottom-up labels form a
// divisibility chain along each root path but two labels alone cannot
// distinguish "parent" from "grandparent" (the quotient is a product of
// sibling-subtree labels either way), so this scheme cannot decide
// parenthood from labels — one of its documented drawbacks. The method
// consults the tree structure and only confirms label consistency.
func (l *BottomUpLabeling) IsParent(a, b *xmltree.Node) bool {
	return b.Parent == a && l.IsAncestor(a, b)
}

// LabelBits implements labeling.Labeling.
func (l *BottomUpLabeling) LabelBits(n *xmltree.Node) int {
	lbl, ok := l.labels[n]
	if !ok {
		return 0
	}
	return lbl.BitLen()
}

// MaxLabelBits implements labeling.Labeling.
func (l *BottomUpLabeling) MaxLabelBits() int {
	max := 0
	for _, lbl := range l.labels {
		if b := lbl.BitLen(); b > max {
			max = b
		}
	}
	return max
}

// Before implements labeling.Labeling. The bottom-up scheme has no order
// support.
func (l *BottomUpLabeling) Before(a, b *xmltree.Node) (bool, error) {
	return false, labeling.ErrOrderUnsupported
}

// InsertChildAt implements labeling.Labeling. The new leaf gets a fresh
// prime and the labels of its whole ancestor chain are recomputed — the
// cost the paper gives as the reason to prefer the top-down variant.
func (l *BottomUpLabeling) InsertChildAt(parent *xmltree.Node, idx int, n *xmltree.Node) (int, error) {
	if _, ok := l.labels[parent]; !ok {
		return 0, fmt.Errorf("prime: insert under unlabeled parent")
	}
	if n == nil {
		return 0, xmltree.ErrNilNode
	}
	if n.Kind != xmltree.ElementNode {
		return 0, ErrNotElement
	}
	if _, ok := l.labels[n]; ok {
		return 0, ErrHasLabel
	}
	if err := parent.InsertChildAt(idx, n); err != nil {
		return 0, err
	}
	l.labels[n] = new(big.Int).SetUint64(l.src.Next())
	relabeled := 1
	for p := parent; p != nil; p = p.Parent {
		l.relabelInterior(p)
		relabeled++
	}
	return relabeled, nil
}

// relabelInterior recomputes an interior node's product from its children's
// current labels.
func (l *BottomUpLabeling) relabelInterior(n *xmltree.Node) {
	kids := n.ElementChildren()
	lbl := big.NewInt(1)
	for _, c := range kids {
		lbl.Mul(lbl, l.labels[c])
	}
	if len(kids) == 1 {
		lbl.Mul(lbl, new(big.Int).SetUint64(l.src.Next()))
	}
	l.labels[n] = lbl
}

// WrapNode implements labeling.Labeling.
func (l *BottomUpLabeling) WrapNode(target, wrapper *xmltree.Node) (int, error) {
	if _, ok := l.labels[target]; !ok {
		return 0, fmt.Errorf("prime: wrap of unlabeled node")
	}
	if target == l.doc.Root {
		return 0, xmltree.ErrIsRoot
	}
	if wrapper == nil {
		return 0, xmltree.ErrNilNode
	}
	if _, ok := l.labels[wrapper]; ok {
		return 0, ErrHasLabel
	}
	parent := target.Parent
	if err := xmltree.WrapChildren(parent, wrapper, target, target); err != nil {
		return 0, err
	}
	l.relabelInterior(wrapper)
	relabeled := 1
	for p := parent; p != nil; p = p.Parent {
		l.relabelInterior(p)
		relabeled++
	}
	return relabeled, nil
}

// Delete implements labeling.Labeling; the ancestor chain is recomputed.
func (l *BottomUpLabeling) Delete(n *xmltree.Node) error {
	if _, ok := l.labels[n]; !ok {
		return fmt.Errorf("prime: delete of unlabeled node")
	}
	if n == l.doc.Root {
		return xmltree.ErrIsRoot
	}
	parent := n.Parent
	for _, m := range xmltree.Elements(n) {
		delete(l.labels, m)
	}
	n.Detach()
	for p := parent; p != nil; p = p.Parent {
		if len(p.ElementChildren()) == 0 {
			// An emptied interior node becomes a leaf: fresh prime.
			l.labels[p] = new(big.Int).SetUint64(l.src.Next())
			continue
		}
		l.relabelInterior(p)
	}
	return nil
}
