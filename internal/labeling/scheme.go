// Package labeling defines the common contract all XML labeling schemes in
// this repository implement — the paper's prime number scheme and the
// interval, prefix and float baselines it is evaluated against.
//
// A Scheme labels a document once; the resulting Labeling answers
// relationship queries (ancestor, parent, document order) purely from the
// labels, and applies dynamic updates while reporting how many existing
// nodes had to be relabeled — the paper's central cost metric
// (Figures 16–18).
package labeling

import (
	"errors"

	"primelabel/internal/xmltree"
)

// Errors shared by scheme implementations.
var (
	// ErrNotLabeled is returned when an operation references a node that
	// carries no label (e.g. it was never part of the labeled document).
	ErrNotLabeled = errors.New("labeling: node has no label")
	// ErrOrderUnsupported is returned by Before when a labeling was built
	// without order maintenance.
	ErrOrderUnsupported = errors.New("labeling: scheme not built with order support")
)

// Labeling is a labeled document: the tree plus one label per element node.
type Labeling interface {
	// SchemeName identifies the scheme that produced this labeling.
	SchemeName() string

	// Doc returns the underlying document. Mutations must go through the
	// labeling (InsertChildAt, WrapNode, Delete) so labels stay consistent.
	Doc() *xmltree.Document

	// IsAncestor reports whether a is a proper ancestor of b, decided from
	// the two labels alone.
	IsAncestor(a, b *xmltree.Node) bool

	// IsParent reports whether a is the parent of b, decided from labels.
	IsParent(a, b *xmltree.Node) bool

	// LabelBits returns the size in bits of n's label as stored.
	LabelBits(n *xmltree.Node) int

	// MaxLabelBits returns the maximum label size over all labeled nodes —
	// the fixed-length storage requirement the paper reports in
	// Figures 13 and 14.
	MaxLabelBits() int

	// Before reports whether a precedes b in document order using only
	// labels (and, for the prime scheme, the SC table).
	Before(a, b *xmltree.Node) (bool, error)

	// InsertChildAt inserts the new element n as the idx-th child of
	// parent, updating the tree and all labels. It returns the number of
	// nodes whose labels were written — newly assigned or changed —
	// including n itself. For order-maintaining schemes the count also
	// includes order bookkeeping updates, matching Section 5.4's
	// accounting where one SC record update counts as one relabeled node.
	InsertChildAt(parent *xmltree.Node, idx int, n *xmltree.Node) (int, error)

	// WrapNode inserts wrapper as a new parent of target: wrapper takes
	// target's place among its siblings and target becomes wrapper's only
	// child (the Figure 17 update). Returns the relabel count as above.
	WrapNode(target, wrapper *xmltree.Node) (int, error)

	// Delete removes the subtree rooted at n. Deletion never relabels
	// other nodes in any scheme (Section 5.3).
	Delete(n *xmltree.Node) error
}

// Orderer is an optional interface for labelings that can produce a
// numeric document-order rank per node (the prime scheme's SC lookup, the
// interval scheme's start value). Query evaluators use it to materialize
// order numbers once per candidate list and then sort/filter on plain ints
// — exactly the strategy Section 4.3 describes ("generate the order
// numbers ... the nodes are sorted according to their order numbers").
type Orderer interface {
	// OrderOf returns a rank that increases in document order. Ranks need
	// not be dense; only relative order matters.
	OrderOf(n *xmltree.Node) (int, error)
}

// Scheme constructs labelings.
type Scheme interface {
	// Name returns the scheme identifier, e.g. "prime", "interval",
	// "prefix-2".
	Name() string
	// Label assigns labels to every element of doc.
	Label(doc *xmltree.Document) (Labeling, error)
}

// TotalLabelBits sums LabelBits over all elements — a storage metric used
// by the ablation benchmarks.
func TotalLabelBits(l Labeling) int {
	total := 0
	xmltree.WalkElements(l.Doc().Root, func(n *xmltree.Node) bool {
		total += l.LabelBits(n)
		return true
	})
	return total
}

// CheckAgainstTree verifies a labeling against parent-pointer ground truth
// over every pair of elements. It is O(n²) and intended for tests; it
// returns the first disagreement found.
func CheckAgainstTree(l Labeling) error {
	els := xmltree.Elements(l.Doc().Root)
	for _, a := range els {
		for _, b := range els {
			truth := a.IsAncestorOf(b)
			if got := l.IsAncestor(a, b); got != truth {
				return &MismatchError{Scheme: l.SchemeName(), A: a, B: b, Got: got, Want: truth}
			}
		}
	}
	return nil
}

// MismatchError reports a labeling that disagrees with the tree.
type MismatchError struct {
	Scheme    string
	A, B      *xmltree.Node
	Got, Want bool
}

func (e *MismatchError) Error() string {
	return "labeling: " + e.Scheme + ": IsAncestor(" + xmltree.PathTo(e.A) + ", " +
		xmltree.PathTo(e.B) + ") disagrees with tree"
}
