package floatlab

import (
	"math/rand"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

func buildTree(t *testing.T) (*xmltree.Document, map[string]*xmltree.Node) {
	t.Helper()
	r := xmltree.NewElement("r")
	a := xmltree.NewElement("a")
	b := xmltree.NewElement("b")
	c := xmltree.NewElement("c")
	for _, s := range []struct{ p, c *xmltree.Node }{{r, a}, {r, b}, {a, c}} {
		if err := s.p.AppendChild(s.c); err != nil {
			t.Fatal(err)
		}
	}
	return xmltree.NewDocument(r), map[string]*xmltree.Node{"r": r, "a": a, "b": b, "c": c}
}

func randomTree(rng *rand.Rand, n int) *xmltree.Document {
	root := xmltree.NewElement("root")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := xmltree.NewElement("e")
		_ = p.AppendChild(c)
		nodes = append(nodes, c)
	}
	return xmltree.NewDocument(root)
}

func TestAgainstTree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		doc := randomTree(rng, 60)
		l, err := Scheme{}.Label(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBeforeAndParent(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	doc := randomTree(rng, 40)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	idx := xmltree.DocOrderIndex(doc)
	els := xmltree.Elements(doc.Root)
	for _, a := range els {
		for _, b := range els {
			got, err := l.Before(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if want := idx[a] < idx[b]; got != want {
				t.Fatal("Before disagrees with doc order")
			}
			if gp := l.IsParent(a, b); gp != (b.Parent == a) {
				t.Fatal("IsParent disagrees with tree")
			}
		}
	}
}

// In theory a float midpoint always exists; in practice the mantissa runs
// out after ~50 consecutive splits at the same point — the flaw the paper
// cites. Repeated front-inserts force it.
func TestMantissaExhaustionForcesRenumber(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if _, err := l.InsertChildAt(ns["a"], 0, xmltree.NewElement("n")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Renumber == 0 {
		t.Error("80 front inserts never exhausted the mantissa")
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
}

// Before exhaustion, inserts are relabel-free — floats do help the common
// case, which is why QRS proposed them.
func TestEarlyInsertsAreCheap(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	count, err := l.InsertChildAt(ns["a"], 0, xmltree.NewElement("n"))
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("first insert count = %d, want 1", count)
	}
}

func TestWrapAndDelete(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	w := xmltree.NewElement("w")
	if _, err := l.WrapNode(ns["a"], w); err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(ns["b"]); err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(doc.Root); err != xmltree.ErrIsRoot {
		t.Errorf("delete root err = %v", err)
	}
	if _, err := l.WrapNode(doc.Root, xmltree.NewElement("x")); err != xmltree.ErrIsRoot {
		t.Errorf("wrap root err = %v", err)
	}
}

func TestLabelBitsFixed(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if l.MaxLabelBits() != 128 || l.LabelBits(ns["a"]) != 128 {
		t.Error("float labels should cost 2×64 bits")
	}
	if l.LabelBits(xmltree.NewElement("ghost")) != 0 {
		t.Error("ghost node has label bits")
	}
}

func TestPropertyDynamicMix(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	doc := randomTree(rng, 15)
	l, err := Scheme{Gap: 8}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 100; step++ {
		els := xmltree.Elements(doc.Root)
		switch op := rng.Intn(10); {
		case op < 6:
			p := els[rng.Intn(len(els))]
			if _, err := l.InsertChildAt(p, rng.Intn(len(p.ElementChildren())+1), xmltree.NewElement("n")); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
		case op < 8:
			tgt := els[rng.Intn(len(els))]
			if tgt == doc.Root {
				continue
			}
			if _, err := l.WrapNode(tgt, xmltree.NewElement("w")); err != nil {
				t.Fatalf("step %d wrap: %v", step, err)
			}
		default:
			if len(els) < 5 {
				continue
			}
			v := els[rng.Intn(len(els))]
			if v == doc.Root {
				continue
			}
			if err := l.Delete(v); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
		}
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
}

func TestNameAndInterval(t *testing.T) {
	if (Scheme{}).Name() != "float-interval" {
		t.Error("Name wrong")
	}
	doc, ns := buildTree(t)
	l, err := Scheme{}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if l.SchemeName() != "float-interval" || l.Doc() != doc {
		t.Error("accessors wrong")
	}
	s, e, ok := l.Interval(ns["a"])
	if !ok || s >= e {
		t.Errorf("Interval(a) = %v,%v,%v", s, e, ok)
	}
	if _, _, ok := l.Interval(xmltree.NewElement("ghost")); ok {
		t.Error("Interval of ghost node")
	}
}
