// Package floatlab implements the floating-point interval labeling of
// Amagasa, Yoshikawa & Uemura's QRS [2], which the paper's related-work
// section uses to illustrate that real-valued labels only postpone
// relabeling: midpoint insertion exhausts the mantissa after ~52
// consecutive splits, at which point the document must be renumbered.
package floatlab

import (
	"errors"
	"fmt"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

// Scheme labels documents with float64 (start, end) intervals.
type Scheme struct {
	// Gap is the initial spacing between consecutive counter values.
	// Larger gaps absorb more insertions before renumbering. 0 means 1.0.
	Gap float64
}

// Name implements labeling.Scheme.
func (Scheme) Name() string { return "float-interval" }

type fLabel struct {
	start, end float64
	level      int
}

// Labeling is a float-interval-labeled document.
type Labeling struct {
	doc      *xmltree.Document
	gap      float64
	labels   map[*xmltree.Node]*fLabel
	Renumber int // how many full renumberings mantissa exhaustion forced
}

var _ labeling.Labeling = (*Labeling)(nil)

// Label implements labeling.Scheme.
func (s Scheme) Label(doc *xmltree.Document) (labeling.Labeling, error) {
	l, err := s.New(doc)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// New labels doc and returns the concrete labeling.
func (s Scheme) New(doc *xmltree.Document) (*Labeling, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("floatlab: nil document")
	}
	gap := s.Gap
	if gap <= 0 {
		gap = 1.0
	}
	l := &Labeling{doc: doc, gap: gap, labels: make(map[*xmltree.Node]*fLabel)}
	l.renumberAll()
	return l, nil
}

// renumberAll assigns fresh, evenly spaced start/end values to the whole
// document and returns the number of existing labels that changed.
func (l *Labeling) renumberAll() int {
	changed := 0
	counter := 0.0
	var walk func(n *xmltree.Node, level int)
	walk = func(n *xmltree.Node, level int) {
		counter += l.gap
		start := counter
		for _, c := range n.Children {
			if c.Kind == xmltree.ElementNode {
				walk(c, level+1)
			}
		}
		counter += l.gap
		old, ok := l.labels[n]
		if !ok || old.start != start || old.end != counter || old.level != level {
			l.labels[n] = &fLabel{start: start, end: counter, level: level}
			if ok {
				changed++
			}
		}
	}
	walk(l.doc.Root, 0)
	return changed
}

// SchemeName implements labeling.Labeling.
func (l *Labeling) SchemeName() string { return "float-interval" }

// Doc implements labeling.Labeling.
func (l *Labeling) Doc() *xmltree.Document { return l.doc }

// Interval returns n's (start, end) pair.
func (l *Labeling) Interval(n *xmltree.Node) (start, end float64, ok bool) {
	nl, ok := l.labels[n]
	if !ok {
		return 0, 0, false
	}
	return nl.start, nl.end, true
}

// IsAncestor is strict containment.
func (l *Labeling) IsAncestor(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	return la.start < lb.start && lb.end < la.end
}

// IsParent combines containment with level.
func (l *Labeling) IsParent(a, b *xmltree.Node) bool {
	return l.IsAncestor(a, b) && l.labels[a].level+1 == l.labels[b].level
}

// LabelBits is the fixed cost of two float64 fields.
func (l *Labeling) LabelBits(n *xmltree.Node) int {
	if _, ok := l.labels[n]; !ok {
		return 0
	}
	return 128
}

// MaxLabelBits implements labeling.Labeling.
func (l *Labeling) MaxLabelBits() int { return 128 }

// Before compares start values.
func (l *Labeling) Before(a, b *xmltree.Node) (bool, error) {
	la, ok := l.labels[a]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	lb, ok := l.labels[b]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	return la.start < lb.start, nil
}

// InsertChildAt implements labeling.Labeling: the new node takes midpoints
// inside the free space at its insertion position. When the mantissa can no
// longer represent a distinct midpoint the whole document is renumbered —
// the failure mode the paper points out.
func (l *Labeling) InsertChildAt(parent *xmltree.Node, idx int, n *xmltree.Node) (int, error) {
	pl, ok := l.labels[parent]
	if !ok {
		return 0, fmt.Errorf("floatlab: insert under unlabeled parent")
	}
	if n == nil {
		return 0, xmltree.ErrNilNode
	}
	if n.Kind != xmltree.ElementNode {
		return 0, errors.New("floatlab: only element nodes are labeled")
	}
	if len(n.Children) > 0 {
		return 0, errors.New("floatlab: inserted nodes must be childless")
	}
	if _, ok := l.labels[n]; ok {
		return 0, errors.New("floatlab: node is already labeled")
	}
	if err := parent.InsertChildAt(idx, n); err != nil {
		return 0, err
	}
	// Free space boundaries: between the previous sibling's end (or the
	// parent's start) and the next sibling's start (or the parent's end).
	lo, hi := pl.start, pl.end
	kids := parent.ElementChildren()
	for i, c := range kids {
		if c != n {
			continue
		}
		if i > 0 {
			lo = l.labels[kids[i-1]].end
		}
		if i < len(kids)-1 {
			hi = l.labels[kids[i+1]].start
		}
		break
	}
	s := midpoint(lo, hi)
	e := midpoint(s, hi)
	if s <= lo || e <= s || e >= hi {
		// Mantissa exhausted: renumber everything (the new node is labeled
		// by the renumbering and counted as the +1).
		l.Renumber++
		changed := l.renumberAll()
		return changed + 1, nil
	}
	l.labels[n] = &fLabel{start: s, end: e, level: pl.level + 1}
	return 1, nil
}

func midpoint(a, b float64) float64 { return a + (b-a)/2 }

// WrapNode implements labeling.Labeling: the wrapper must enclose target's
// interval, which requires space outside it; when none exists the document
// is renumbered.
func (l *Labeling) WrapNode(target, wrapper *xmltree.Node) (int, error) {
	tl, ok := l.labels[target]
	if !ok {
		return 0, fmt.Errorf("floatlab: wrap of unlabeled node")
	}
	if target == l.doc.Root {
		return 0, xmltree.ErrIsRoot
	}
	if _, ok := l.labels[wrapper]; ok {
		return 0, errors.New("floatlab: node is already labeled")
	}
	parent := target.Parent
	pl := l.labels[parent]
	// Space around target among its siblings.
	lo, hi := pl.start, pl.end
	kids := parent.ElementChildren()
	for i, c := range kids {
		if c != target {
			continue
		}
		if i > 0 {
			lo = l.labels[kids[i-1]].end
		}
		if i < len(kids)-1 {
			hi = l.labels[kids[i+1]].start
		}
		break
	}
	if err := xmltree.WrapChildren(parent, wrapper, target, target); err != nil {
		return 0, err
	}
	s := midpoint(lo, tl.start)
	e := midpoint(tl.end, hi)
	if s <= lo || s >= tl.start || e <= tl.end || e >= hi {
		l.Renumber++
		changed := l.renumberAll()
		return changed + 1, nil
	}
	l.labels[wrapper] = &fLabel{start: s, end: e, level: pl.level + 1}
	// The target subtree's levels all shift down by one.
	count := 1
	for _, m := range xmltree.Elements(target) {
		l.labels[m].level++
		count++
	}
	return count, nil
}

// Delete implements labeling.Labeling.
func (l *Labeling) Delete(n *xmltree.Node) error {
	if _, ok := l.labels[n]; !ok {
		return fmt.Errorf("floatlab: delete of unlabeled node")
	}
	if n == l.doc.Root {
		return xmltree.ErrIsRoot
	}
	for _, m := range xmltree.Elements(n) {
		delete(l.labels, m)
	}
	n.Detach()
	return nil
}
