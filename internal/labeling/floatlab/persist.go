package floatlab

import (
	"fmt"
	"io"

	"primelabel/internal/labeling/wire"
	"primelabel/internal/xmltree"
)

// Persistence for float-interval-labeled documents.
//
// Midpoint insertion makes float labels history-dependent twice over: the
// exact bit patterns depend on the insertion sequence, and the renumber
// counter records how often mantissa exhaustion forced a full renumbering.
// Marshal stores each node's (start, end, level) triple bit-exactly plus the
// gap and renumber state; Unmarshal verifies strict containment on every
// parent-child edge.

// fltMagic identifies the float persistence format and version.
var fltMagic = []byte("FLTLBL\x01")

// Marshal writes the labeled document — gap and renumber state, tree, and
// every node's label triple — to out in the internal binary format read by
// Unmarshal.
func (l *Labeling) Marshal(out io.Writer) error {
	w := wire.NewWriter(out)
	w.Raw(fltMagic)
	w.F64(l.gap)
	w.Int(l.Renumber)
	wire.WriteTree(w, l.doc.Root, func(n *xmltree.Node) {
		nl := l.labels[n]
		if nl == nil {
			w.Fail("floatlab: unlabeled element %s", xmltree.PathTo(n))
			return
		}
		w.F64(nl.start)
		w.F64(nl.end)
		w.Int(nl.level)
	})
	return w.Flush()
}

// Unmarshal reads a labeled document produced by Marshal and verifies the
// containment and level invariants.
func Unmarshal(in io.Reader) (*Labeling, error) {
	r := wire.NewReader(in)
	r.Expect(fltMagic)
	l := &Labeling{
		gap:    r.F64(),
		labels: make(map[*xmltree.Node]*fLabel),
	}
	l.Renumber = r.Int()
	if r.Err() == nil && l.gap <= 0 {
		r.Fail("non-positive gap %g", l.gap)
	}
	root, err := wire.ReadTree(r, func(n *xmltree.Node) error {
		l.labels[n] = &fLabel{start: r.F64(), end: r.F64(), level: r.Int()}
		return r.Err()
	})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	l.doc = xmltree.NewDocument(root)
	if err := l.checkRestored(); err != nil {
		return nil, err
	}
	return l, nil
}

// checkRestored validates a just-unmarshaled labeling: root at level 0,
// start < end everywhere, strict containment and level+1 on every edge.
func (l *Labeling) checkRestored() error {
	if rl := l.labels[l.doc.Root]; rl.level != 0 {
		return fmt.Errorf("%w: root level %d", wire.ErrBadFormat, rl.level)
	}
	for _, n := range xmltree.Elements(l.doc.Root) {
		nl := l.labels[n]
		if !(nl.start < nl.end) {
			return fmt.Errorf("%w: degenerate interval (%g,%g)", wire.ErrBadFormat, nl.start, nl.end)
		}
		if n.Parent == nil {
			continue
		}
		pl := l.labels[n.Parent]
		if pl.level+1 != nl.level {
			return fmt.Errorf("%w: level %d under parent level %d", wire.ErrBadFormat, nl.level, pl.level)
		}
		if !(pl.start < nl.start && nl.end < pl.end) {
			return fmt.Errorf("%w: interval (%g,%g) not contained in parent (%g,%g)",
				wire.ErrBadFormat, nl.start, nl.end, pl.start, pl.end)
		}
	}
	return nil
}

// Gap returns the initial counter spacing this labeling was built with.
func (l *Labeling) Gap() float64 { return l.gap }
