// Package compact implements a fixed-width interval ancestry scheme in the
// style of the optimal ancestry labelings of Fraigniaud–Korman and the
// simple ~lg n + O(√lg n)-bit interval scheme of Dahlgaard, Knudsen and
// Rotbart: every element carries a (start, end) pair from one depth-first
// counter plus its depth, packed into at most two machine words.
//
// Ancestor, parent and document-order tests are two or three integer
// comparisons — no multiplication, no division, and in particular no
// math/big arithmetic — and the probe path performs no heap allocation.
// That makes compact the serving backend the label store freezes hot
// read-mostly documents into: the prime scheme keeps absorbing updates
// cheaply, and documents that have gone cold get probe latency that is
// independent of label bit-length (the prime scheme's labels grow with
// depth and fan-out; see BENCH_query.json's 355-bit fixture).
//
// The trade-off is the classic static one the paper quantifies in
// Figures 16–18: an insertion renumbers every node at or after the
// insertion point, so compact is only the right primary scheme for
// documents that rarely change. Deletion is free (gaps keep the
// containment invariant valid), which also makes restored labels
// history-dependent — persistence stores them verbatim (see persist.go).
package compact

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

// SchemeName is the scheme identifier compact labelings report.
const SchemeName = "compact"

// MaxLabelWords is the fixed storage bound: a label always fits in two
// 64-bit words (and in practice in far less — see Labeling.MaxLabelBits).
const MaxLabelWords = 2

// ErrTooLarge reports a document whose DFS counter range would overflow the
// fixed 32-bit label fields (more than ~2^31 elements).
var ErrTooLarge = errors.New("compact: document exceeds the fixed 32-bit counter range")

// Label is one element's compact label: the (Start, End) range of a single
// depth-first counter that increments on every element entry and exit, plus
// the element's depth. x is a proper ancestor of y iff
// Start(x) < Start(y) && End(y) < End(x); Start increases in document
// order. Three uint32 fields fit comfortably inside the two-word
// MaxLabelWords bound.
type Label struct {
	// Start is the counter value on entering the element.
	Start uint32
	// End is the counter value on leaving the element (after its subtree).
	End uint32
	// Level is the element's depth (root = 0), used for parent tests.
	Level uint32
}

// Contains reports whether l's range properly contains m's — the
// constant-time ancestor test on raw labels.
func (l Label) Contains(m Label) bool {
	return l.Start < m.Start && m.End < l.End
}

// Scheme labels documents with compact fixed-width interval labels.
type Scheme struct{}

// Name implements labeling.Scheme.
func (Scheme) Name() string { return SchemeName }

// Labeling is a compact-labeled document. Labels are stored by value in a
// node-keyed map, so relationship probes are a map lookup plus integer
// comparisons and never allocate.
type Labeling struct {
	doc    *xmltree.Document
	labels map[*xmltree.Node]Label
	// maxVal is the largest counter value issued; maxLevel the deepest
	// level. Together they determine the used-bits accounting.
	maxVal   uint32
	maxLevel uint32
}

var _ labeling.Labeling = (*Labeling)(nil)
var _ labeling.Orderer = (*Labeling)(nil)

// Label implements labeling.Scheme.
func (s Scheme) Label(doc *xmltree.Document) (labeling.Labeling, error) {
	return s.New(doc)
}

// New labels doc and returns the concrete labeling.
func (s Scheme) New(doc *xmltree.Document) (*Labeling, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("compact: nil document")
	}
	l := &Labeling{doc: doc}
	if _, err := l.renumberChecked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Freeze builds a compact labeling over an already-hosted document without
// touching the tree or any other labeling attached to it. The label store
// uses it to re-label a read-mostly document in the background; the
// resulting labeling answers exactly the relationship queries the
// document's primary scheme answers, from two-word labels.
func Freeze(doc *xmltree.Document) (*Labeling, error) {
	return Scheme{}.New(doc)
}

// renumberChecked renumbers the whole document after verifying the counter
// range fits the fixed 32-bit fields, returning how many previously labeled
// nodes changed.
func (l *Labeling) renumberChecked() (int, error) {
	n := len(xmltree.Elements(l.doc.Root))
	if uint64(2*n) >= math.MaxUint32 {
		return 0, fmt.Errorf("%w: %d elements", ErrTooLarge, n)
	}
	return l.renumber(), nil
}

// renumber assigns fresh labels to every element from a single DFS counter
// and returns how many previously labeled nodes changed (newly labeled
// nodes are not counted, matching the interval baseline's accounting).
func (l *Labeling) renumber() int {
	fresh := make(map[*xmltree.Node]Label, len(l.labels))
	changed := 0
	counter := uint32(0)
	maxLevel := uint32(0)
	var walk func(n *xmltree.Node, level uint32)
	walk = func(n *xmltree.Node, level uint32) {
		counter++
		start := counter
		if level > maxLevel {
			maxLevel = level
		}
		for _, c := range n.Children {
			if c.Kind == xmltree.ElementNode {
				walk(c, level+1)
			}
		}
		counter++
		nl := Label{Start: start, End: counter, Level: level}
		fresh[n] = nl
		if old, ok := l.labels[n]; ok && old != nl {
			changed++
		}
	}
	walk(l.doc.Root, 0)
	l.labels = fresh
	if counter > l.maxVal {
		l.maxVal = counter
	}
	l.maxLevel = maxLevel
	return changed
}

// SchemeName implements labeling.Labeling.
func (l *Labeling) SchemeName() string { return SchemeName }

// Doc implements labeling.Labeling.
func (l *Labeling) Doc() *xmltree.Document { return l.doc }

// LabelOf returns n's raw label, for diagnostics, the rdb engine and the
// benchmark suite. ok is false for nodes outside the labeling.
func (l *Labeling) LabelOf(n *xmltree.Node) (Label, bool) {
	nl, ok := l.labels[n]
	return nl, ok
}

// IsAncestor implements labeling.Labeling: two map lookups and two integer
// comparisons, allocation-free.
func (l *Labeling) IsAncestor(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	return la.Contains(lb)
}

// IsParent implements labeling.Labeling: containment plus a depth check.
func (l *Labeling) IsParent(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	return la.Contains(lb) && la.Level+1 == lb.Level
}

// LabelBits reports the used-bits accounting for the fixed-width encoding:
// two counter fields wide enough for the largest value issued plus a level
// field wide enough for the deepest node. Always at most 96 and therefore
// within the two-word bound.
func (l *Labeling) LabelBits(n *xmltree.Node) int {
	if _, ok := l.labels[n]; !ok {
		return 0
	}
	return l.MaxLabelBits()
}

// MaxLabelBits implements labeling.Labeling: 2·⌈lg maxCounter⌉ bits of
// range plus ⌈lg maxLevel⌉ bits of depth.
func (l *Labeling) MaxLabelBits() int {
	return 2*bits.Len32(l.maxVal) + bits.Len32(l.maxLevel)
}

// OrderOf implements labeling.Orderer: the start counter increases in
// document order.
func (l *Labeling) OrderOf(n *xmltree.Node) (int, error) {
	nl, ok := l.labels[n]
	if !ok {
		return 0, labeling.ErrNotLabeled
	}
	return int(nl.Start), nil
}

// Before implements labeling.Labeling: document order is carried directly
// by the start counter.
func (l *Labeling) Before(a, b *xmltree.Node) (bool, error) {
	la, ok := l.labels[a]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	lb, ok := l.labels[b]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	return la.Start < lb.Start, nil
}

// InsertChildAt implements labeling.Labeling. Compact is a static scheme:
// the insertion renumbers the document and every node whose label changed
// is counted — the defining cost the paper's Figures 16–18 quantify, which
// is why the label store only freezes documents into compact once their
// update rate has fallen off.
func (l *Labeling) InsertChildAt(parent *xmltree.Node, idx int, n *xmltree.Node) (int, error) {
	if _, ok := l.labels[parent]; !ok {
		return 0, errors.New("compact: insert under unlabeled parent")
	}
	if err := l.validateFresh(n); err != nil {
		return 0, err
	}
	if err := parent.InsertChildAt(idx, n); err != nil {
		return 0, err
	}
	changed, err := l.renumberChecked()
	if err != nil {
		return 0, err
	}
	// The changed existing nodes plus the newly labeled node itself.
	return changed + 1, nil
}

// WrapNode implements labeling.Labeling, with the same renumbering cost as
// InsertChildAt.
func (l *Labeling) WrapNode(target, wrapper *xmltree.Node) (int, error) {
	if _, ok := l.labels[target]; !ok {
		return 0, errors.New("compact: wrap of unlabeled node")
	}
	if target == l.doc.Root {
		return 0, xmltree.ErrIsRoot
	}
	if err := l.validateFresh(wrapper); err != nil {
		return 0, err
	}
	if err := xmltree.WrapChildren(target.Parent, wrapper, target, target); err != nil {
		return 0, err
	}
	changed, err := l.renumberChecked()
	if err != nil {
		return 0, err
	}
	return changed + 1, nil
}

// Delete implements labeling.Labeling: the subtree's labels are dropped and
// every remaining label stays valid — containment tolerates gaps.
func (l *Labeling) Delete(n *xmltree.Node) error {
	if _, ok := l.labels[n]; !ok {
		return errors.New("compact: delete of unlabeled node")
	}
	if n == l.doc.Root {
		return xmltree.ErrIsRoot
	}
	for _, m := range xmltree.Elements(n) {
		delete(l.labels, m)
	}
	n.Detach()
	return nil
}

// validateFresh rejects nodes that cannot be inserted.
func (l *Labeling) validateFresh(n *xmltree.Node) error {
	if n == nil {
		return xmltree.ErrNilNode
	}
	if n.Kind != xmltree.ElementNode {
		return errors.New("compact: only element nodes are labeled")
	}
	if n.Parent != nil {
		return xmltree.ErrHasParent
	}
	if len(n.Children) > 0 {
		return errors.New("compact: inserted nodes must be childless")
	}
	if _, ok := l.labels[n]; ok {
		return errors.New("compact: node is already labeled")
	}
	return nil
}
