package compact

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/labeling/interval"
	"primelabel/internal/xmlparse"
	"primelabel/internal/xmltree"
)

func parse(t *testing.T, xml string) *xmltree.Document {
	t.Helper()
	doc, err := xmlparse.ParseDocument(strings.NewReader(xml), xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

const testXML = `<library><shelf><book><title>a</title><author>x</author></book>` +
	`<book><title>b</title></book></shelf><shelf><book/><magazine><issue/><issue/></magazine></shelf></library>`

// randomXML builds a random tree for property tests.
func randomXML(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString("<r>")
	open := 0
	for i := 0; i < n; i++ {
		switch {
		case open > 0 && rng.Intn(3) == 0:
			b.WriteString("</e>")
			open--
		default:
			b.WriteString("<e>")
			open++
		}
	}
	for ; open > 0; open-- {
		b.WriteString("</e>")
	}
	b.WriteString("</r>")
	return b.String()
}

func TestAncestryAgainstTree(t *testing.T) {
	l, err := Scheme{}.New(parse(t, testXML))
	if err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
	if got := l.SchemeName(); got != "compact" {
		t.Errorf("SchemeName = %q", got)
	}
}

func TestAncestryRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		l, err := Scheme{}.New(parse(t, randomXML(rng, 60)))
		if err != nil {
			t.Fatal(err)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
	}
}

// TestParityWithXRel checks compact agrees with the XRel interval baseline
// on every ancestor/parent/order probe — the two schemes implement the same
// containment idea, so any disagreement is a bug in one of them.
func TestParityWithXRel(t *testing.T) {
	docC := parse(t, testXML)
	docI := parse(t, testXML)
	lc, err := Scheme{}.New(docC)
	if err != nil {
		t.Fatal(err)
	}
	li, err := (interval.Scheme{Variant: interval.XRel}).New(docI)
	if err != nil {
		t.Fatal(err)
	}
	elsC := xmltree.Elements(docC.Root)
	elsI := xmltree.Elements(docI.Root)
	for i := range elsC {
		for j := range elsC {
			if got, want := lc.IsAncestor(elsC[i], elsC[j]), li.IsAncestor(elsI[i], elsI[j]); got != want {
				t.Fatalf("IsAncestor(%d,%d) = %v, xrel %v", i, j, got, want)
			}
			if got, want := lc.IsParent(elsC[i], elsC[j]), li.IsParent(elsI[i], elsI[j]); got != want {
				t.Fatalf("IsParent(%d,%d) = %v, xrel %v", i, j, got, want)
			}
			gb, err := lc.Before(elsC[i], elsC[j])
			if err != nil {
				t.Fatal(err)
			}
			wb, err := li.Before(elsI[i], elsI[j])
			if err != nil {
				t.Fatal(err)
			}
			if gb != wb {
				t.Fatalf("Before(%d,%d) = %v, xrel %v", i, j, gb, wb)
			}
		}
	}
}

func TestOrderMatchesDocumentOrder(t *testing.T) {
	l, err := Scheme{}.New(parse(t, testXML))
	if err != nil {
		t.Fatal(err)
	}
	els := xmltree.Elements(l.Doc().Root)
	prev := -1
	for i, n := range els {
		r, err := l.OrderOf(n)
		if err != nil {
			t.Fatal(err)
		}
		if r <= prev {
			t.Fatalf("rank %d at element %d not increasing past %d", r, i, prev)
		}
		prev = r
	}
}

func TestLabelBitsWithinTwoWords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l, err := Scheme{}.New(parse(t, randomXML(rng, 500)))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.MaxLabelBits(); got <= 0 || got > 64*MaxLabelWords {
		t.Fatalf("MaxLabelBits = %d, want within (0,%d]", got, 64*MaxLabelWords)
	}
}

// TestProbeDoesNotAllocate is the freeze path's core promise: relationship
// probes on compact labels perform no heap allocation and no big-integer
// arithmetic.
func TestProbeDoesNotAllocate(t *testing.T) {
	l, err := Scheme{}.New(parse(t, testXML))
	if err != nil {
		t.Fatal(err)
	}
	els := xmltree.Elements(l.Doc().Root)
	a, b := els[0], els[len(els)-1]
	if allocs := testing.AllocsPerRun(200, func() {
		l.IsAncestor(a, b)
		l.IsParent(a, b)
		if _, err := l.Before(a, b); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("probe path allocates %.1f objects per run, want 0", allocs)
	}
}

func TestUpdatesKeepInvariants(t *testing.T) {
	l, err := Scheme{}.New(parse(t, testXML))
	if err != nil {
		t.Fatal(err)
	}
	doc := l.Doc()
	shelves := doc.Root.ElementChildren()

	count, err := l.InsertChildAt(shelves[0], 1, xmltree.NewElement("book"))
	if err != nil {
		t.Fatal(err)
	}
	if count < 1 {
		t.Fatalf("insert relabel count = %d, want >= 1", count)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatalf("after insert: %v", err)
	}

	books := shelves[0].ElementChildren()
	if _, err := l.WrapNode(books[0], xmltree.NewElement("featured")); err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatalf("after wrap: %v", err)
	}

	if err := l.Delete(shelves[1]); err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatalf("after delete: %v", err)
	}

	// Deletion left counter gaps; further inserts must still work.
	if _, err := l.InsertChildAt(doc.Root, 0, xmltree.NewElement("shelf")); err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatalf("after post-delete insert: %v", err)
	}
}

func TestUpdateValidation(t *testing.T) {
	l, err := Scheme{}.New(parse(t, testXML))
	if err != nil {
		t.Fatal(err)
	}
	root := l.Doc().Root
	if err := l.Delete(root); err != xmltree.ErrIsRoot {
		t.Errorf("Delete(root) = %v, want ErrIsRoot", err)
	}
	if _, err := l.WrapNode(root, xmltree.NewElement("w")); err != xmltree.ErrIsRoot {
		t.Errorf("WrapNode(root) = %v, want ErrIsRoot", err)
	}
	if _, err := l.InsertChildAt(root, 0, nil); err == nil {
		t.Error("InsertChildAt(nil) succeeded")
	}
	if _, err := l.InsertChildAt(root, 0, root.ElementChildren()[0]); err == nil {
		t.Error("inserting an attached node succeeded")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	l, err := Scheme{}.New(parse(t, testXML))
	if err != nil {
		t.Fatal(err)
	}
	// Update churn leaves history-dependent gaps the restore must preserve.
	shelves := l.Doc().Root.ElementChildren()
	if _, err := l.InsertChildAt(shelves[0], 0, xmltree.NewElement("book")); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(shelves[1]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := l.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(back); err != nil {
		t.Fatal(err)
	}
	origEls := xmltree.Elements(l.Doc().Root)
	backEls := xmltree.Elements(back.Doc().Root)
	if len(origEls) != len(backEls) {
		t.Fatalf("element count %d, want %d", len(backEls), len(origEls))
	}
	for i := range origEls {
		ol, _ := l.LabelOf(origEls[i])
		bl, _ := back.LabelOf(backEls[i])
		if ol != bl {
			t.Errorf("element %d label %+v, want %+v", i, bl, ol)
		}
	}
	if back.MaxLabelBits() != l.MaxLabelBits() {
		t.Errorf("MaxLabelBits %d, want %d", back.MaxLabelBits(), l.MaxLabelBits())
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	l, err := Scheme{}.New(parse(t, testXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Unmarshal(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated stream unmarshaled")
	}
	bad := append([]byte{}, good...)
	bad[0] ^= 0xff
	if _, err := Unmarshal(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic unmarshaled")
	}
	// Flip bytes in the label payload region; any outcome but a silent
	// inconsistent labeling is acceptable.
	for off := len(cmpMagic); off < len(good); off += 3 {
		mut := append([]byte{}, good...)
		mut[off] ^= 0x55
		back, err := Unmarshal(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		if cerr := labeling.CheckAgainstTree(back); cerr != nil {
			t.Fatalf("offset %d: corrupt stream produced inconsistent labeling: %v", off, cerr)
		}
	}
}

func TestFreezeDoesNotTouchOtherLabelings(t *testing.T) {
	doc := parse(t, testXML)
	li, err := (interval.Scheme{Variant: interval.XRel}).New(doc)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := Freeze(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Both labelings answer over the same tree, independently.
	if err := labeling.CheckAgainstTree(li); err != nil {
		t.Fatal(err)
	}
	if err := labeling.CheckAgainstTree(lc); err != nil {
		t.Fatal(err)
	}
}

func TestTooLargeGuard(t *testing.T) {
	// The guard itself is untestable at 2^31 elements; exercise the check
	// indirectly by confirming a normal document passes it.
	if _, err := (Scheme{}).New(parse(t, testXML)); err != nil {
		t.Fatal(err)
	}
}
