package compact

import (
	"fmt"
	"io"

	"primelabel/internal/labeling/wire"
	"primelabel/internal/xmltree"
)

// Persistence for compact-labeled documents.
//
// Compact labels are regenerable for a freshly labeled document, but not
// after dynamic updates: deletions leave counter gaps, so the stored values
// are history-dependent — exactly the property that makes a label store
// persist labels verbatim instead of relabeling. Marshal stores every
// node's (start, end, level) triple alongside the tree; Unmarshal verifies
// the containment and level invariants on every parent-child edge before
// returning.

// cmpMagic identifies the compact persistence format and version.
var cmpMagic = []byte("CMPLBL\x01")

// Marshal writes the labeled document — tree and every node's label triple,
// plus the counter/level maxima used for bit accounting — to out in the
// internal binary format read by Unmarshal.
func (l *Labeling) Marshal(out io.Writer) error {
	w := wire.NewWriter(out)
	w.Raw(cmpMagic)
	w.Uvarint(uint64(l.maxVal))
	w.Uvarint(uint64(l.maxLevel))
	wire.WriteTree(w, l.doc.Root, func(n *xmltree.Node) {
		nl, ok := l.labels[n]
		if !ok {
			// Every element of a consistent labeling is labeled; fail the
			// stream rather than write a hole.
			w.Fail("compact: unlabeled element %s", xmltree.PathTo(n))
			return
		}
		w.Uvarint(uint64(nl.Start))
		w.Uvarint(uint64(nl.End))
		w.Uvarint(uint64(nl.Level))
	})
	return w.Flush()
}

// Unmarshal reads a labeled document produced by Marshal and verifies the
// containment and level invariants before returning.
func Unmarshal(in io.Reader) (*Labeling, error) {
	r := wire.NewReader(in)
	r.Expect(cmpMagic)
	l := &Labeling{
		labels: make(map[*xmltree.Node]Label),
	}
	l.maxVal = readU32(r, "max counter")
	l.maxLevel = readU32(r, "max level")
	root, err := wire.ReadTree(r, func(n *xmltree.Node) error {
		l.labels[n] = Label{
			Start: readU32(r, "start"),
			End:   readU32(r, "end"),
			Level: readU32(r, "level"),
		}
		return r.Err()
	})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	l.doc = xmltree.NewDocument(root)
	if err := l.checkRestored(); err != nil {
		return nil, err
	}
	return l, nil
}

// readU32 reads one uvarint and rejects values outside the fixed 32-bit
// label fields.
func readU32(r *wire.Reader, what string) uint32 {
	v := r.Uvarint()
	if v > 0xffffffff {
		r.Fail("compact: %s %d overflows 32 bits", what, v)
		return 0
	}
	return uint32(v)
}

// checkRestored validates a just-unmarshaled labeling: root at level 0,
// start < end and per-edge containment, levels increasing by one per edge,
// and the stored maxima covering every label.
func (l *Labeling) checkRestored() error {
	rl := l.labels[l.doc.Root]
	if rl.Level != 0 {
		return fmt.Errorf("%w: root level %d", wire.ErrBadFormat, rl.Level)
	}
	for _, n := range xmltree.Elements(l.doc.Root) {
		nl := l.labels[n]
		if nl.Start >= nl.End {
			return fmt.Errorf("%w: empty range (%d,%d)", wire.ErrBadFormat, nl.Start, nl.End)
		}
		if nl.End > l.maxVal {
			return fmt.Errorf("%w: label (%d,%d) exceeds stored max %d", wire.ErrBadFormat, nl.Start, nl.End, l.maxVal)
		}
		if nl.Level > l.maxLevel {
			return fmt.Errorf("%w: level %d exceeds stored max %d", wire.ErrBadFormat, nl.Level, l.maxLevel)
		}
		if n.Parent == nil {
			continue
		}
		pl := l.labels[n.Parent]
		if pl.Level+1 != nl.Level {
			return fmt.Errorf("%w: level %d under parent level %d", wire.ErrBadFormat, nl.Level, pl.Level)
		}
		if !pl.Contains(nl) {
			return fmt.Errorf("%w: label (%d,%d) not contained in parent (%d,%d)",
				wire.ErrBadFormat, nl.Start, nl.End, pl.Start, pl.End)
		}
	}
	return nil
}
