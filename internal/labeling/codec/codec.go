// Package codec is the scheme-dispatching persistence layer for labeled
// documents. It frames a stream with a magic header and a scheme tag, then
// delegates to the owning package's Marshal/Unmarshal — prime, interval
// (XISS and XRel), prefix (Prefix-1 and Prefix-2), Dewey, and float — so a
// single Save/Load pair covers every serving scheme.
//
// Persistence exists because dynamic updates make allocation state
// history-dependent in every scheme: the prime scheme's prime source and SC
// table, interval gaps left by deletes, prefix codes past deleted siblings,
// Dewey component gaps, float midpoint bit patterns. Relabeling from the
// XML would produce different labels, which is exactly what a label store
// must never do.
//
// The static study variants prime-bottomup and prime-decomposed are not
// persistable; Marshal returns ErrUnsupported for them.
package codec

import (
	"errors"
	"fmt"
	"io"

	"primelabel/internal/labeling"
	"primelabel/internal/labeling/compact"
	"primelabel/internal/labeling/floatlab"
	"primelabel/internal/labeling/interval"
	"primelabel/internal/labeling/prefix"
	"primelabel/internal/labeling/prime"
)

// Magic identifies a codec-framed stream (version 1). Callers that need to
// distinguish codec streams from the prime scheme's legacy bare format can
// peek for it.
var Magic = []byte("LBLCODEC\x01")

// ErrUnsupported reports a labeling whose scheme has no persistence codec.
var ErrUnsupported = errors.New("codec: scheme does not support persistence")

// ErrBadFormat reports a stream that is not a codec-framed labeling.
var ErrBadFormat = errors.New("codec: invalid labeled-document stream")

// Scheme tags stored in the stream header.
const (
	tagPrime    = "prime"
	tagInterval = "interval"
	tagPrefix   = "prefix"
	tagDewey    = "dewey"
	tagFloat    = "float"
	tagCompact  = "compact"
)

// Supported reports whether Marshal can persist l.
func Supported(l labeling.Labeling) bool {
	switch l.(type) {
	case *prime.Labeling, *interval.Labeling, *prefix.Labeling, *prefix.DeweyLabeling, *floatlab.Labeling, *compact.Labeling:
		return true
	default:
		return false
	}
}

// Marshal writes l — tree, labels, and all allocation state — to w, framed
// with the codec header so Unmarshal can restore it without knowing the
// scheme in advance. It returns ErrUnsupported for schemes with no codec.
func Marshal(l labeling.Labeling, w io.Writer) error {
	var tag string
	switch l.(type) {
	case *prime.Labeling:
		tag = tagPrime
	case *interval.Labeling:
		tag = tagInterval
	case *prefix.Labeling:
		tag = tagPrefix
	case *prefix.DeweyLabeling:
		tag = tagDewey
	case *floatlab.Labeling:
		tag = tagFloat
	case *compact.Labeling:
		tag = tagCompact
	default:
		return fmt.Errorf("%w: %s", ErrUnsupported, l.SchemeName())
	}
	header := make([]byte, 0, len(Magic)+1+len(tag))
	header = append(header, Magic...)
	header = append(header, byte(len(tag)))
	header = append(header, tag...)
	if _, err := w.Write(header); err != nil {
		return err
	}
	switch v := l.(type) {
	case *prime.Labeling:
		return v.Marshal(w)
	case *interval.Labeling:
		return v.Marshal(w)
	case *prefix.Labeling:
		return v.Marshal(w)
	case *prefix.DeweyLabeling:
		return v.Marshal(w)
	case *floatlab.Labeling:
		return v.Marshal(w)
	case *compact.Labeling:
		return v.Marshal(w)
	}
	panic("unreachable")
}

// Unmarshal reads a labeling written by Marshal, dispatching on the stored
// scheme tag. The returned value is the concrete labeling type of the
// scheme that produced the stream; every codec verifies its scheme's
// invariants before returning, so a corrupted or tampered stream cannot
// produce an inconsistent labeling.
func Unmarshal(r io.Reader) (labeling.Labeling, error) {
	head := make([]byte, len(Magic)+1)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head[:len(Magic)]) != string(Magic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	tagLen := int(head[len(Magic)])
	tagBuf := make([]byte, tagLen)
	if _, err := io.ReadFull(r, tagBuf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	switch string(tagBuf) {
	case tagPrime:
		return prime.Unmarshal(r)
	case tagInterval:
		return interval.Unmarshal(r)
	case tagPrefix:
		return prefix.Unmarshal(r)
	case tagDewey:
		return prefix.UnmarshalDewey(r)
	case tagFloat:
		return floatlab.Unmarshal(r)
	case tagCompact:
		return compact.Unmarshal(r)
	default:
		return nil, fmt.Errorf("%w: unknown scheme tag %q", ErrBadFormat, string(tagBuf))
	}
}
