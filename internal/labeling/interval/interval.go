// Package interval implements the static interval-based labeling schemes
// the paper uses as its primary baseline: the XISS (order, size) numbering
// of Li & Moon [11] and the XRel (start, end) region numbering of
// Yoshikawa & Amagasa [16].
//
// Interval labels are the most compact (2·(1+log N) bits, Section 3.1) and
// answer ancestor and order queries with plain integer comparisons, but
// they are static: an insertion renumbers every node that follows the
// insertion point in document order — the cost quantified in Figures 16–18.
package interval

import (
	"errors"
	"fmt"
	"math/bits"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

// Variant selects the numbering style.
type Variant int

const (
	// XISS labels each node with (order, size): x is an ancestor of y iff
	// order(x) < order(y) <= order(x) + size(x).
	XISS Variant = iota
	// XRel labels each node with (start, end) from a single depth-first
	// counter: x is an ancestor of y iff start(x) < start(y) and
	// end(y) < end(x).
	XRel
)

func (v Variant) String() string {
	switch v {
	case XISS:
		return "interval-xiss"
	case XRel:
		return "interval-xrel"
	default:
		return fmt.Sprintf("interval(%d)", int(v))
	}
}

// Scheme labels documents with interval labels.
type Scheme struct {
	Variant Variant
	// Slack, when > 1, multiplies XISS size values to reserve room for
	// future insertions (the mitigation Section 2 discusses and dismisses
	// as unpredictable). An insertion that fits in reserved slack relabels
	// only the new node; once slack is exhausted the subtree is renumbered.
	// Ignored for XRel. 0 or 1 means no slack.
	Slack int
}

// Name implements labeling.Scheme.
func (s Scheme) Name() string {
	n := s.Variant.String()
	if s.Variant == XISS && s.Slack > 1 {
		n += fmt.Sprintf("+slack%d", s.Slack)
	}
	return n
}

type ivLabel struct {
	a, b  int // (order, order+size] for XISS; (start, end) for XRel
	level int // depth, stored alongside as in [11] for parent tests
}

// Labeling is an interval-labeled document.
type Labeling struct {
	doc     *xmltree.Document
	variant Variant
	slack   int
	labels  map[*xmltree.Node]*ivLabel
	maxVal  int // largest counter value issued, for label-size accounting
}

var _ labeling.Labeling = (*Labeling)(nil)

// Label implements labeling.Scheme.
func (s Scheme) Label(doc *xmltree.Document) (labeling.Labeling, error) {
	l, err := s.New(doc)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// New labels doc and returns the concrete labeling.
func (s Scheme) New(doc *xmltree.Document) (*Labeling, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("interval: nil document")
	}
	l := &Labeling{
		doc:     doc,
		variant: s.Variant,
		slack:   s.Slack,
		labels:  make(map[*xmltree.Node]*ivLabel),
	}
	l.renumber()
	return l, nil
}

// renumber assigns fresh labels to the whole document and returns how many
// existing nodes changed (newly labeled nodes are not counted here).
func (l *Labeling) renumber() int {
	changed := 0
	switch l.variant {
	case XRel:
		counter := 0
		var walk func(n *xmltree.Node, level int)
		walk = func(n *xmltree.Node, level int) {
			counter++
			start := counter
			for _, c := range n.Children {
				if c.Kind == xmltree.ElementNode {
					walk(c, level+1)
				}
			}
			counter++
			changed += l.set(n, start, counter, level)
		}
		walk(l.doc.Root, 0)
		if counter > l.maxVal {
			l.maxVal = counter
		}
	case XISS:
		// Extended preorder with optional slack multiplier.
		var walk func(n *xmltree.Node, next, level int) (order, size int)
		walk = func(n *xmltree.Node, next, level int) (int, int) {
			order := next
			next++
			size := 0
			for _, c := range n.Children {
				if c.Kind == xmltree.ElementNode {
					_, csize := walk(c, next, level+1)
					next += csize
					size += csize
				}
			}
			// Reserve slack: the advertised size covers the real subtree
			// plus spare room.
			adv := size + 1
			if l.slack > 1 {
				adv = (size + 1) * l.slack
			}
			changed += l.set(n, order, order+adv-1, level)
			return order, adv
		}
		_, total := walk(l.doc.Root, 1, 0)
		if total > l.maxVal {
			l.maxVal = total
		}
	}
	return changed
}

// set updates n's label and reports whether an existing label changed.
func (l *Labeling) set(n *xmltree.Node, a, b, level int) int {
	old, ok := l.labels[n]
	if ok && old.a == a && old.b == b && old.level == level {
		return 0
	}
	l.labels[n] = &ivLabel{a: a, b: b, level: level}
	if !ok {
		return 0 // newly labeled, not a relabel of an existing node
	}
	return 1
}

// SchemeName implements labeling.Labeling.
func (l *Labeling) SchemeName() string {
	return Scheme{Variant: l.variant, Slack: l.slack}.Name()
}

// Doc implements labeling.Labeling.
func (l *Labeling) Doc() *xmltree.Document { return l.doc }

// Interval returns n's label pair, for diagnostics and the rdb engine.
func (l *Labeling) Interval(n *xmltree.Node) (a, b int, ok bool) {
	nl, ok := l.labels[n]
	if !ok {
		return 0, 0, false
	}
	return nl.a, nl.b, true
}

// Level returns n's stored level (depth).
func (l *Labeling) Level(n *xmltree.Node) (int, bool) {
	nl, ok := l.labels[n]
	if !ok {
		return 0, false
	}
	return nl.level, true
}

// IsAncestor implements the containment test of the active variant.
func (l *Labeling) IsAncestor(a, b *xmltree.Node) bool {
	la, ok := l.labels[a]
	if !ok {
		return false
	}
	lb, ok := l.labels[b]
	if !ok {
		return false
	}
	switch l.variant {
	case XRel:
		return la.a < lb.a && lb.b < la.b
	default: // XISS
		return la.a < lb.a && lb.a <= la.b
	}
}

// IsParent combines containment with the stored level, as XISS does.
func (l *Labeling) IsParent(a, b *xmltree.Node) bool {
	if !l.IsAncestor(a, b) {
		return false
	}
	return l.labels[a].level+1 == l.labels[b].level
}

// LabelBits reports the fixed-length encoding the paper assumes: two
// counter fields wide enough for the largest value issued.
func (l *Labeling) LabelBits(n *xmltree.Node) int {
	if _, ok := l.labels[n]; !ok {
		return 0
	}
	return 2 * bits.Len(uint(l.maxVal))
}

// MaxLabelBits implements labeling.Labeling: 2·(1+log N) with the actual
// counter maximum.
func (l *Labeling) MaxLabelBits() int {
	return 2 * bits.Len(uint(l.maxVal))
}

// OrderOf implements labeling.Orderer: the first label field (order/start)
// increases in document order.
func (l *Labeling) OrderOf(n *xmltree.Node) (int, error) {
	nl, ok := l.labels[n]
	if !ok {
		return 0, labeling.ErrNotLabeled
	}
	return nl.a, nil
}

// Before implements labeling.Labeling: interval labels carry document order
// directly in the first field.
func (l *Labeling) Before(a, b *xmltree.Node) (bool, error) {
	la, ok := l.labels[a]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	lb, ok := l.labels[b]
	if !ok {
		return false, labeling.ErrNotLabeled
	}
	return la.a < lb.a, nil
}

// InsertChildAt implements labeling.Labeling. For XISS with slack, the
// insertion tries to fit into the parent's reserved range and relabels
// nothing when it can; otherwise (and always for XRel) the document is
// renumbered and every node whose label changed is counted — the static
// scheme's defining cost.
func (l *Labeling) InsertChildAt(parent *xmltree.Node, idx int, n *xmltree.Node) (int, error) {
	if _, ok := l.labels[parent]; !ok {
		return 0, fmt.Errorf("interval: insert under unlabeled parent")
	}
	if err := validateFresh(l.labels, n); err != nil {
		return 0, err
	}
	if err := parent.InsertChildAt(idx, n); err != nil {
		return 0, err
	}
	if l.variant == XISS && l.slack > 1 {
		if ok := l.tryInsertIntoSlack(parent, n); ok {
			return 1, nil
		}
	}
	return l.renumber() + 1, nil
}

// tryInsertIntoSlack attempts to place n (just added under parent) inside
// parent's reserved interval after the last labeled sibling, without
// violating any invariant. It only succeeds when n was appended after all
// labeled siblings (order between siblings cannot be fixed up for free).
func (l *Labeling) tryInsertIntoSlack(parent, n *xmltree.Node) bool {
	pl := l.labels[parent]
	kids := parent.ElementChildren()
	if kids[len(kids)-1] != n {
		return false
	}
	// Find the highest end among labeled children.
	high := pl.a
	for _, c := range kids {
		if c == n {
			continue
		}
		cl, ok := l.labels[c]
		if !ok {
			return false
		}
		if cl.b > high {
			high = cl.b
		}
	}
	if high+1 > pl.b {
		return false // slack exhausted
	}
	l.labels[n] = &ivLabel{a: high + 1, b: high + 1, level: pl.level + 1}
	if high+1 > l.maxVal {
		l.maxVal = high + 1
	}
	return true
}

// WrapNode implements labeling.Labeling.
func (l *Labeling) WrapNode(target, wrapper *xmltree.Node) (int, error) {
	if _, ok := l.labels[target]; !ok {
		return 0, fmt.Errorf("interval: wrap of unlabeled node")
	}
	if target == l.doc.Root {
		return 0, xmltree.ErrIsRoot
	}
	if err := validateFresh(l.labels, wrapper); err != nil {
		return 0, err
	}
	if err := xmltree.WrapChildren(target.Parent, wrapper, target, target); err != nil {
		return 0, err
	}
	return l.renumber() + 1, nil
}

// Delete implements labeling.Labeling: deletion leaves all remaining labels
// untouched (containment stays valid with gaps).
func (l *Labeling) Delete(n *xmltree.Node) error {
	if _, ok := l.labels[n]; !ok {
		return fmt.Errorf("interval: delete of unlabeled node")
	}
	if n == l.doc.Root {
		return xmltree.ErrIsRoot
	}
	for _, m := range xmltree.Elements(n) {
		delete(l.labels, m)
	}
	n.Detach()
	return nil
}

// validateFresh rejects nodes that cannot be inserted.
func validateFresh(labels map[*xmltree.Node]*ivLabel, n *xmltree.Node) error {
	if n == nil {
		return xmltree.ErrNilNode
	}
	if n.Kind != xmltree.ElementNode {
		return errors.New("interval: only element nodes are labeled")
	}
	if n.Parent != nil {
		return xmltree.ErrHasParent
	}
	if len(n.Children) > 0 {
		return errors.New("interval: inserted nodes must be childless")
	}
	if _, ok := labels[n]; ok {
		return errors.New("interval: node is already labeled")
	}
	return nil
}
