package interval

import (
	"fmt"
	"io"

	"primelabel/internal/labeling/wire"
	"primelabel/internal/xmltree"
)

// Persistence for interval-labeled documents.
//
// Interval labels are regenerable from the tree for a freshly labeled
// document, but not after dynamic updates: deletions leave gaps and
// slack-mode insertions place nodes inside reserved ranges, so the label
// values are history-dependent. Marshal therefore stores every node's
// (a, b, level) triple verbatim alongside the tree; Unmarshal verifies the
// variant's containment invariant on every parent-child edge before
// returning.

// ivMagic identifies the interval persistence format and version.
var ivMagic = []byte("IVLLBL\x01")

// Marshal writes the labeled document — tree, variant configuration, and
// every node's label triple — to out in the internal binary format read by
// Unmarshal.
func (l *Labeling) Marshal(out io.Writer) error {
	w := wire.NewWriter(out)
	w.Raw(ivMagic)
	w.Int(int(l.variant))
	w.Int(l.slack)
	w.Int(l.maxVal)
	wire.WriteTree(w, l.doc.Root, func(n *xmltree.Node) {
		nl := l.labels[n]
		if nl == nil {
			// Every element of a consistent labeling is labeled; fail the
			// stream rather than write a hole.
			w.Fail("interval: unlabeled element %s", xmltree.PathTo(n))
			return
		}
		w.Int(nl.a)
		w.Int(nl.b)
		w.Int(nl.level)
	})
	return w.Flush()
}

// Unmarshal reads a labeled document produced by Marshal and verifies the
// containment and level invariants of the stored variant.
func Unmarshal(in io.Reader) (*Labeling, error) {
	r := wire.NewReader(in)
	r.Expect(ivMagic)
	variant := Variant(r.Int())
	if variant != XISS && variant != XRel {
		r.Fail("unknown interval variant %d", int(variant))
	}
	l := &Labeling{
		variant: variant,
		slack:   r.Int(),
		maxVal:  r.Int(),
		labels:  make(map[*xmltree.Node]*ivLabel),
	}
	root, err := wire.ReadTree(r, func(n *xmltree.Node) error {
		l.labels[n] = &ivLabel{a: r.Int(), b: r.Int(), level: r.Int()}
		return r.Err()
	})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	l.doc = xmltree.NewDocument(root)
	if err := l.checkRestored(); err != nil {
		return nil, err
	}
	return l, nil
}

// checkRestored validates a just-unmarshaled labeling: root at level 0,
// per-edge containment under the active variant, levels increasing by one
// per edge, and maxVal covering every stored counter value.
func (l *Labeling) checkRestored() error {
	rl := l.labels[l.doc.Root]
	if rl.level != 0 {
		return fmt.Errorf("%w: root level %d", wire.ErrBadFormat, rl.level)
	}
	for _, n := range xmltree.Elements(l.doc.Root) {
		nl := l.labels[n]
		if nl.a > l.maxVal || nl.b > l.maxVal {
			return fmt.Errorf("%w: label (%d,%d) exceeds stored max %d", wire.ErrBadFormat, nl.a, nl.b, l.maxVal)
		}
		if n.Parent == nil {
			continue
		}
		pl := l.labels[n.Parent]
		if pl.level+1 != nl.level {
			return fmt.Errorf("%w: level %d under parent level %d", wire.ErrBadFormat, nl.level, pl.level)
		}
		if !l.IsAncestor(n.Parent, n) {
			return fmt.Errorf("%w: label (%d,%d) not contained in parent (%d,%d)",
				wire.ErrBadFormat, nl.a, nl.b, pl.a, pl.b)
		}
	}
	return nil
}

// Variant returns the numbering style this labeling was built with.
func (l *Labeling) Variant() Variant { return l.variant }
