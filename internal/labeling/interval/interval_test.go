package interval

import (
	"math/rand"
	"testing"

	"primelabel/internal/labeling"
	"primelabel/internal/xmltree"
)

func buildTree(t *testing.T) (*xmltree.Document, map[string]*xmltree.Node) {
	t.Helper()
	r := xmltree.NewElement("r")
	a := xmltree.NewElement("a")
	b := xmltree.NewElement("b")
	c := xmltree.NewElement("c")
	d := xmltree.NewElement("d")
	for _, s := range []struct{ p, c *xmltree.Node }{{r, a}, {r, b}, {a, c}, {a, d}} {
		if err := s.p.AppendChild(s.c); err != nil {
			t.Fatal(err)
		}
	}
	return xmltree.NewDocument(r), map[string]*xmltree.Node{"r": r, "a": a, "b": b, "c": c, "d": d}
}

func randomTree(rng *rand.Rand, n int) *xmltree.Document {
	root := xmltree.NewElement("root")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := xmltree.NewElement("e")
		_ = p.AppendChild(c)
		nodes = append(nodes, c)
	}
	return xmltree.NewDocument(root)
}

func variants() []Scheme {
	return []Scheme{{Variant: XISS}, {Variant: XRel}, {Variant: XISS, Slack: 4}}
}

func TestXRelNumbers(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Variant: XRel}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// DFS: r(1,...), a(2,...), c(3,4), d(5,6), a ends 7, b(8,9), r ends 10.
	want := map[string][2]int{
		"r": {1, 10}, "a": {2, 7}, "c": {3, 4}, "d": {5, 6}, "b": {8, 9},
	}
	for name, w := range want {
		a, b, ok := l.Interval(ns[name])
		if !ok || a != w[0] || b != w[1] {
			t.Errorf("%s interval = (%d,%d), want %v", name, a, b, w)
		}
	}
}

func TestXISSNumbers(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Variant: XISS}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Extended preorder with no slack: order = preorder position, size =
	// subtree node count.
	type os struct{ order, size int }
	want := map[string]os{
		"r": {1, 5}, "a": {2, 3}, "c": {3, 1}, "d": {4, 1}, "b": {5, 1},
	}
	for name, w := range want {
		a, b, ok := l.Interval(ns[name])
		if !ok || a != w.order || b-a+1 != w.size {
			t.Errorf("%s = (order %d, size %d), want (%d,%d)", name, a, b-a+1, w.order, w.size)
		}
	}
}

func TestAgainstTreeAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, s := range variants() {
		for trial := 0; trial < 10; trial++ {
			doc := randomTree(rng, 70)
			l, err := s.Label(doc)
			if err != nil {
				t.Fatal(err)
			}
			if err := labeling.CheckAgainstTree(l); err != nil {
				t.Fatalf("%s trial %d: %v", s.Name(), trial, err)
			}
		}
	}
}

func TestIsParent(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, s := range variants() {
		doc := randomTree(rng, 50)
		l, err := s.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range xmltree.Elements(doc.Root) {
			for _, b := range xmltree.Elements(doc.Root) {
				want := b.Parent == a
				if got := l.IsParent(a, b); got != want {
					t.Fatalf("%s: IsParent(%s,%s)=%v want %v", s.Name(),
						xmltree.PathTo(a), xmltree.PathTo(b), got, want)
				}
			}
		}
	}
}

func TestBeforeMatchesDocOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, s := range variants() {
		doc := randomTree(rng, 60)
		l, err := s.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		idx := xmltree.DocOrderIndex(doc)
		els := xmltree.Elements(doc.Root)
		for _, a := range els {
			for _, b := range els {
				got, err := l.Before(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if want := idx[a] < idx[b]; got != want {
					t.Fatalf("%s: Before disagrees with doc order", s.Name())
				}
			}
		}
	}
}

// Figure 16's defining behavior: a leaf insert relabels a number of nodes
// that grows with document size.
func TestInsertRelabelsFollowingNodes(t *testing.T) {
	for _, s := range []Scheme{{Variant: XISS}, {Variant: XRel}} {
		rng := rand.New(rand.NewSource(84))
		doc := randomTree(rng, 500)
		l, err := s.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		// Insert at the front of the root's children: nearly every node
		// follows the insertion point.
		count, err := l.InsertChildAt(doc.Root, 0, xmltree.NewElement("new"))
		if err != nil {
			t.Fatal(err)
		}
		if count < 400 {
			t.Errorf("%s: front insert relabeled %d nodes, want hundreds", s.Name(), count)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatal(err)
		}
	}
}

// Appending at the very end of an XRel document still renumbers the
// ancestor chain (their end values shift).
func TestAppendRelabelsAncestors(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Variant: XRel}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	count, err := l.InsertChildAt(ns["b"], 0, xmltree.NewElement("new"))
	if err != nil {
		t.Fatal(err)
	}
	// b and r change (ends shift); new node is the +1.
	if count != 3 {
		t.Errorf("append relabel count = %d, want 3", count)
	}
}

// The slack ablation: inserts that fit in reserved space relabel nothing.
func TestXISSSlackAbsorbsAppends(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Variant: XISS, Slack: 4}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		count, err := l.InsertChildAt(ns["a"], len(ns["a"].ElementChildren()), xmltree.NewElement("s"))
		if err != nil {
			t.Fatal(err)
		}
		if count != 1 {
			t.Errorf("slack append %d relabeled %d nodes, want 1", i, count)
		}
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
	// Eventually the slack runs out and a renumber happens.
	sawRenumber := false
	for i := 0; i < 30; i++ {
		count, err := l.InsertChildAt(ns["a"], len(ns["a"].ElementChildren()), xmltree.NewElement("s"))
		if err != nil {
			t.Fatal(err)
		}
		if count > 1 {
			sawRenumber = true
			break
		}
	}
	if !sawRenumber {
		t.Error("slack never exhausted after 30 appends")
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
}

func TestWrapNode(t *testing.T) {
	for _, s := range variants() {
		doc, ns := buildTree(t)
		l, err := s.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		w := xmltree.NewElement("w")
		if _, err := l.WrapNode(ns["a"], w); err != nil {
			t.Fatal(err)
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if _, err := l.WrapNode(doc.Root, xmltree.NewElement("w2")); err != xmltree.ErrIsRoot {
			t.Errorf("wrap root err = %v", err)
		}
	}
}

func TestDeleteKeepsOtherLabels(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Variant: XRel}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	a1, b1, _ := l.Interval(ns["b"])
	if err := l.Delete(ns["a"]); err != nil {
		t.Fatal(err)
	}
	a2, b2, ok := l.Interval(ns["b"])
	if !ok || a1 != a2 || b1 != b2 {
		t.Error("deletion changed an unrelated label")
	}
	if _, _, ok := l.Interval(ns["c"]); ok {
		t.Error("deleted descendant still labeled")
	}
	if err := l.Delete(doc.Root); err != xmltree.ErrIsRoot {
		t.Errorf("delete root err = %v", err)
	}
	if err := labeling.CheckAgainstTree(l); err != nil {
		t.Fatal(err)
	}
}

func TestLabelBits(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Variant: XRel}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Max counter 10 → 4 bits per field → 8 bits fixed length.
	if got := l.MaxLabelBits(); got != 8 {
		t.Errorf("MaxLabelBits = %d, want 8", got)
	}
	if got := l.LabelBits(ns["c"]); got != 8 {
		t.Errorf("LabelBits = %d, want 8 (fixed length)", got)
	}
	if got := l.LabelBits(xmltree.NewElement("ghost")); got != 0 {
		t.Errorf("ghost LabelBits = %d", got)
	}
}

func TestInsertValidation(t *testing.T) {
	doc, ns := buildTree(t)
	l, err := Scheme{Variant: XISS}.New(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.InsertChildAt(ns["a"], 0, nil); err == nil {
		t.Error("nil insert should fail")
	}
	if _, err := l.InsertChildAt(ns["a"], 0, xmltree.NewText("t")); err == nil {
		t.Error("text insert should fail")
	}
	if _, err := l.InsertChildAt(xmltree.NewElement("out"), 0, xmltree.NewElement("n")); err == nil {
		t.Error("unlabeled parent should fail")
	}
}

func TestSchemeNames(t *testing.T) {
	if got := (Scheme{Variant: XISS}).Name(); got != "interval-xiss" {
		t.Errorf("Name = %q", got)
	}
	if got := (Scheme{Variant: XRel}).Name(); got != "interval-xrel" {
		t.Errorf("Name = %q", got)
	}
	if got := (Scheme{Variant: XISS, Slack: 4}).Name(); got != "interval-xiss+slack4" {
		t.Errorf("Name = %q", got)
	}
}

func TestPropertyDynamicMix(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for _, s := range variants() {
		doc := randomTree(rng, 15)
		l, err := s.New(doc)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 60; step++ {
			els := xmltree.Elements(doc.Root)
			switch op := rng.Intn(10); {
			case op < 6:
				p := els[rng.Intn(len(els))]
				if _, err := l.InsertChildAt(p, rng.Intn(len(p.ElementChildren())+1), xmltree.NewElement("n")); err != nil {
					t.Fatalf("%s step %d insert: %v", s.Name(), step, err)
				}
			case op < 8:
				tgt := els[rng.Intn(len(els))]
				if tgt == doc.Root {
					continue
				}
				if _, err := l.WrapNode(tgt, xmltree.NewElement("w")); err != nil {
					t.Fatalf("%s step %d wrap: %v", s.Name(), step, err)
				}
			default:
				if len(els) < 5 {
					continue
				}
				v := els[rng.Intn(len(els))]
				if v == doc.Root {
					continue
				}
				if err := l.Delete(v); err != nil {
					t.Fatalf("%s step %d delete: %v", s.Name(), step, err)
				}
			}
		}
		if err := labeling.CheckAgainstTree(l); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}
