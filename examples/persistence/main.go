// Persistence: label once, mutate, save the labeled document, restore it
// in a "new process", and keep updating — the lifecycle of a label store
// that must never relabel. Dynamic updates produce labels that no fresh
// labeling pass would regenerate, which is exactly why the full allocation
// state travels with the document.
package main

import (
	"bytes"
	"fmt"
	"log"

	"primelabel"
)

func main() {
	doc, err := primelabel.LoadString(
		`<inventory>
			<warehouse id="east"><item/><item/></warehouse>
			<warehouse id="west"><item/></warehouse>
		</inventory>`,
		primelabel.Config{
			Scheme:        primelabel.Prime,
			TrackOrder:    true,
			RecyclePrimes: true,
		})
	if err != nil {
		log.Fatal(err)
	}

	// Mutate: ship one item, receive two (one of them order-sensitive).
	east := doc.Find("warehouse")[0]
	items := doc.Find("item")
	if err := doc.Delete(items[1]); err != nil {
		log.Fatal(err)
	}
	if _, _, err := doc.InsertChild(east, 0, "item"); err != nil {
		log.Fatal(err)
	}
	added, _, err := doc.InsertAfter(doc.Find("item")[0], "item")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before save: %d items, new item labeled %s\n",
		len(doc.Find("item")), doc.Label(added))

	// Persist the labeled document (tree + labels + allocator + SC table).
	var store bytes.Buffer
	if err := doc.Save(&store); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %d bytes\n", store.Len())

	// "Restart": restore and verify the labels came back identical.
	restored, err := primelabel.LoadSaved(&store)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	orig := doc.Find("item")
	back := restored.Find("item")
	for i := range orig {
		if doc.Label(orig[i]) != restored.Label(back[i]) {
			same = false
		}
	}
	fmt.Printf("labels identical after restore: %v\n", same)

	// The restored document keeps absorbing updates without relabeling:
	// allocation resumes exactly where it stopped.
	fixed := restored.Label(back[0])
	for i := 0; i < 100; i++ {
		target := restored.Find("item")[i%len(back)]
		if _, _, err := restored.InsertAfter(target, "item"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 100 more inserts: %d items, first label still %s (%v)\n",
		len(restored.Find("item")), restored.Label(back[0]),
		restored.Label(back[0]) == fixed)

	// Order queries work across the save/restore boundary.
	second, err := restored.Query("//warehouse[@id='east']/item[2]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("east warehouse still has an addressable second item: %v\n", len(second) == 1)
}
