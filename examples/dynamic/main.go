// Dynamic: a sustained insert workload demonstrating the prime scheme's
// headline property — existing labels never change, no matter how many
// nodes arrive — along with how label sizes and SC-table costs evolve as
// the small primes are consumed (the growth the paper's Opt1/Opt2 curb).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"primelabel"
)

func main() {
	doc, err := primelabel.LoadString(
		`<feed><channel><item/></channel></feed>`,
		primelabel.Config{
			Scheme:           primelabel.Prime,
			TrackOrder:       true,
			PowerOfTwoLeaves: true,
			ReservedPrimes:   8,
		})
	if err != nil {
		log.Fatal(err)
	}

	// Take label snapshots of the first nodes and verify they never move.
	channel := doc.Find("channel")[0]
	firstItem := doc.Find("item")[0]
	snapshots := map[string]string{
		"channel": doc.Label(channel),
		"item[1]": doc.Label(firstItem),
	}

	rng := rand.New(rand.NewSource(42))
	totalWrites := 0
	fmt.Printf("%8s %14s %14s %16s\n", "inserts", "max label bits", "writes so far", "writes/insert")
	items := doc.Find("item")
	for i := 1; i <= 2000; i++ {
		// Mix appends with order-sensitive mid-list inserts.
		var relabeled int
		if rng.Intn(3) == 0 {
			target := items[rng.Intn(len(items))]
			var n primelabel.Node
			n, relabeled, err = doc.InsertBefore(target, "item")
			items = append(items, n)
		} else {
			var n primelabel.Node
			n, relabeled, err = doc.InsertChild(channel, i%len(items), "item")
			items = append(items, n)
		}
		if err != nil {
			log.Fatal(err)
		}
		totalWrites += relabeled
		if i%250 == 0 {
			fmt.Printf("%8d %14d %14d %16.1f\n", i, doc.MaxLabelBits(), totalWrites, float64(totalWrites)/float64(i))
		}
	}

	fmt.Println()
	ok := doc.Label(channel) == snapshots["channel"] && doc.Label(firstItem) == snapshots["item[1]"]
	fmt.Printf("original labels untouched after 2000 inserts: %v\n", ok)
	st := doc.Stats()
	fmt.Printf("document grew to %d elements; item[1] still first: ", st.Elements)
	first, err := doc.Query("/feed/channel/item[1]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(first) == 1)
}
