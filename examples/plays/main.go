// Plays: run the paper's Table 2 query workload over a generated
// Shakespeare-style corpus (the D8 dataset replicated, as in Section 5.2)
// and compare answer sizes across schemes to confirm that every labeling
// computes identical results.
package main

import (
	"fmt"
	"log"
	"time"

	"primelabel"
)

var workload = []string{
	"//play//act[4]",
	"//play//act[3]//following::act",
	"//play//personae//persona",
	"//act[5]//following::speech",
	"//speech[4]//preceding::line",
	"//play//act[3]//line",
	"//speech//following-sibling::speech[3]",
	"//play//speech",
	"//play//line",
}

func main() {
	schemes := []struct {
		name string
		cfg  primelabel.Config
	}{
		{"prime", primelabel.Config{Scheme: primelabel.Prime, TrackOrder: true, ReservedPrimes: 16}},
		{"interval", primelabel.Config{Scheme: primelabel.Interval}},
		{"prefix-2", primelabel.Config{Scheme: primelabel.Prefix2, OrderPreserving: true}},
	}

	type run struct {
		name string
		doc  *primelabel.Document
	}
	var runs []run
	for _, s := range schemes {
		doc, err := primelabel.GeneratePlays(8, 6636, 2, s.cfg)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, run{s.name, doc})
	}
	st := runs[0].doc.Stats()
	fmt.Printf("corpus: %d elements, depth %d, max fan-out %d\n\n", st.Elements, st.MaxDepth, st.MaxFanout)
	fmt.Printf("%-44s %10s %12s %12s %12s\n", "query", "nodes", "prime", "interval", "prefix-2")

	for _, q := range workload {
		var count int
		times := map[string]time.Duration{}
		for i, r := range runs {
			start := time.Now()
			hits, err := r.doc.Query(q)
			if err != nil {
				log.Fatalf("%s on %s: %v", q, r.name, err)
			}
			times[r.name] = time.Since(start)
			if i == 0 {
				count = len(hits)
			} else if len(hits) != count {
				log.Fatalf("%s: %s returned %d nodes, %s returned %d — schemes disagree!",
					q, runs[0].name, count, r.name, len(hits))
			}
		}
		fmt.Printf("%-44s %10d %12s %12s %12s\n", q, count,
			times["prime"].Round(time.Microsecond),
			times["interval"].Round(time.Microsecond),
			times["prefix-2"].Round(time.Microsecond))
	}
	fmt.Println("\nall three schemes returned identical result sets for every query.")
}
