// Bookstore: the paper's motivating scenario (Section 4) — an ordered
// catalog under continuous order-sensitive edits. Compares the update bill
// of the prime scheme against interval and prefix labeling on the same
// workload: every edit inserts a product *between* existing siblings, the
// worst case for order maintenance.
package main

import (
	"fmt"
	"log"
	"strings"

	"primelabel"
)

// buildStore makes a store with several ordered shelves of books.
func buildStore() string {
	var b strings.Builder
	b.WriteString("<store>")
	for s := 0; s < 8; s++ {
		b.WriteString("<shelf>")
		for i := 0; i < 40; i++ {
			b.WriteString("<book><title>t</title><price>p</price></book>")
		}
		b.WriteString("</shelf>")
	}
	b.WriteString("</store>")
	return b.String()
}

func main() {
	src := buildStore()
	configs := []struct {
		name string
		cfg  primelabel.Config
	}{
		// SCChunk=100: one SC value carries the order of 100 nodes, so an
		// insert that shifts k following nodes rewrites ~k/100 records.
		{"prime + SC table", primelabel.Config{Scheme: primelabel.Prime, TrackOrder: true, PowerOfTwoLeaves: true, ReservedPrimes: 8, SCChunk: 100}},
		{"interval (XISS)", primelabel.Config{Scheme: primelabel.Interval}},
		{"prefix-2 ordered", primelabel.Config{Scheme: primelabel.Prefix2, OrderPreserving: true}},
	}

	fmt.Println("workload: 20 inserts, each as the SECOND book of a shelf")
	fmt.Println("(all following books must keep their relative order)")
	fmt.Println()
	for _, c := range configs {
		doc, err := primelabel.LoadString(src, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		worst := 0
		for i := 0; i < 20; i++ {
			shelf := doc.Find("shelf")[i%8]
			first := shelf.Children()[0]
			_, relabeled, err := doc.InsertAfter(first, "book")
			if err != nil {
				log.Fatal(err)
			}
			total += relabeled
			if relabeled > worst {
				worst = relabeled
			}
		}
		fmt.Printf("  %-18s labels written: total=%5d  worst single insert=%4d  max label=%3d bits\n",
			c.name, total, worst, doc.MaxLabelBits())

		// Verify ordering still answers correctly after the churn.
		second, err := doc.Query("//shelf[1]/book[2]")
		if err != nil {
			log.Fatal(err)
		}
		if len(second) != 1 {
			log.Fatalf("%s: shelf[1]/book[2] returned %d nodes", c.name, len(second))
		}
	}

	fmt.Println()
	fmt.Println("the prime scheme pays a handful of SC-record rewrites per insert;")
	fmt.Println("interval renumbers the document and ordered prefix renumbers every")
	fmt.Println("following sibling subtree — the paper's Figure 18 in miniature.")
}
