// Server: hosts a bookstore catalog in an in-process labeld instance and
// drives it over HTTP with a mixed workload — concurrent XPath queries and
// label-relation probes racing order-sensitive inserts. Shows the service
// side of the paper's story: many readers answer structural queries from
// labels alone while dynamic updates relabel only the few nodes the prime
// scheme requires, and the /metrics endpoint reports the running totals.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"primelabel/internal/server"
	"primelabel/internal/server/api"
	"primelabel/internal/server/client"
)

func buildStore() string {
	var b strings.Builder
	b.WriteString("<store>")
	for s := 0; s < 3; s++ {
		b.WriteString("<shelf>")
		for i := 0; i < 10; i++ {
			b.WriteString("<book><title>t</title><price>p</price></book>")
		}
		b.WriteString("</shelf>")
	}
	b.WriteString("</store>")
	return b.String()
}

func main() {
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	fmt.Printf("labeld listening on %s\n\n", addr)

	c := client.New("http://"+addr, nil)
	info, err := c.Load("bookstore", api.LoadRequest{
		XML:              buildStore(),
		TrackOrder:       true,
		PowerOfTwoLeaves: true,
		ReservedPrimes:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q: %d elements, scheme %s, widest label %d bits\n\n",
		info.Name, info.Elements, info.Scheme, info.MaxLabelBits)

	// A few structural questions answered from labels alone.
	books, err := c.Query("bookstore", "/store/shelf[2]/book")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shelf 2 holds %d books; first is node %d with label %s\n",
		books.Count, books.Nodes[0].ID, books.Nodes[0].Label)
	anc, _ := c.IsAncestor("bookstore", 0, books.Nodes[0].ID)
	ord, _ := c.Before("bookstore", books.Nodes[0].ID, books.Nodes[1].ID)
	fmt.Printf("root is its ancestor: %v; it precedes its right sibling: %v\n\n", anc, ord)

	// Mixed workload: 4 readers query while a writer inserts new books
	// between existing siblings — the worst case for order maintenance.
	const inserts = 10
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < inserts; i++ {
			if _, err := c.Insert("bookstore", 1, 1, "book"); err != nil {
				log.Fatal(err)
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := c.Query("bookstore", "//book"); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()

	after, err := c.Info("bookstore")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d concurrent inserts: %d elements at generation %d\n",
		inserts, after.Elements, after.Generation)
	fmt.Printf("nodes relabeled across all inserts: %d (prime scheme relabels only\n"+
		"the SC-table neighborhood of each insertion point)\n\n", after.Relabeled)

	metrics, err := c.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected server metrics:")
	for _, line := range strings.Split(metrics, "\n") {
		for _, want := range []string{
			"labeld_queries_total ", "labeld_query_cache_hit_rate ",
			"labeld_updates_total ", "labeld_relabeled_nodes_total ",
		} {
			if strings.HasPrefix(line, want) {
				fmt.Println("  " + line)
			}
		}
	}
}
