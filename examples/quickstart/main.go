// Quickstart: label a small document with the prime number scheme, inspect
// the labels, test ancestry by divisibility, and run order-sensitive
// queries — the end-to-end flow of the paper's running example.
package main

import (
	"fmt"
	"log"

	"primelabel"
)

const catalogXML = `<catalog>
  <book id="b1">
    <title>The Art of Computer Programming</title>
    <author>Knuth</author>
  </book>
  <book id="b2">
    <title>Structure and Interpretation</title>
    <author>Abelson</author>
    <author>Sussman</author>
  </book>
</catalog>`

func main() {
	doc, err := primelabel.LoadString(catalogXML, primelabel.Config{
		Scheme:     primelabel.Prime,
		TrackOrder: true, // build the SC table so order queries work
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== labels (parent-label × self-label products) ==")
	var dump func(n primelabel.Node)
	dump = func(n primelabel.Node) {
		fmt.Printf("  %-28s label=%-6s self=%s\n", n.Path(), doc.Label(n), doc.SelfLabel(n))
		for _, c := range n.Children() {
			dump(c)
		}
	}
	dump(doc.Root())

	// Ancestor tests are label divisibility: label(descendant) mod
	// label(ancestor) == 0 (Property 2 of the paper).
	books := doc.Find("book")
	authors := doc.Find("author")
	fmt.Println("\n== ancestor tests from labels alone ==")
	fmt.Printf("  catalog ancestor-of author[1]? %v\n", doc.IsAncestor(doc.Root(), authors[0]))
	fmt.Printf("  book[1] ancestor-of author[1]? %v\n", doc.IsAncestor(books[0], authors[0]))
	fmt.Printf("  book[1] ancestor-of author[2]? %v\n", doc.IsAncestor(books[0], authors[1]))

	// Order-sensitive queries use the SC table.
	fmt.Println("\n== queries ==")
	for _, q := range []string{
		"/catalog/book[2]/author",
		"//author[1]//following::author",
		"//book//following-sibling::book",
	} {
		hits, err := doc.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-38s → %d node(s)\n", q, len(hits))
		for _, h := range hits {
			fmt.Printf("      %s %q\n", h.Path(), h.Text())
		}
	}

	// Dynamic insert: a new author squeezes in as author[2] of book 2 —
	// without touching any existing label.
	before := doc.Label(authors[2])
	node, relabeled, err := doc.InsertAfter(authors[1], "author")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== inserted %s (labels written: %d; existing labels untouched: %v) ==\n",
		node.Path(), relabeled, doc.Label(authors[2]) == before)
	hits, err := doc.Query("/catalog/book[2]/author[2]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  /catalog/book[2]/author[2] now resolves to the new node: %v\n",
		len(hits) == 1 && hits[0] == node)
}
