package primelabel

import (
	"strings"
	"testing"
)

// TestSaveRoundTripAllSchemes is the regression matrix behind the
// examples/persistence walkthrough: every serving scheme — prime plus the
// interval, XRel, prefix, Dewey and float baselines — must survive
// Save/LoadSaved after update churn with identical labels, identical stats,
// and the ability to keep absorbing updates. The churn matters: it leaves
// history-dependent allocation state (interval gaps, spent prefix codes,
// Dewey component gaps, float midpoints, consumed primes) that relabeling
// from the XML could never reproduce.
func TestSaveRoundTripAllSchemes(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"prime", Config{Scheme: Prime, TrackOrder: true, PowerOfTwoLeaves: true}},
		{"prime-recycle", Config{Scheme: Prime, TrackOrder: true, RecyclePrimes: true, OrderSpacing: 8}},
		{"interval", Config{Scheme: Interval}},
		{"xrel", Config{Scheme: XRel}},
		{"prefix-1", Config{Scheme: Prefix1}},
		{"prefix-2", Config{Scheme: Prefix2, OrderPreserving: true}},
		{"dewey", Config{Scheme: Dewey}},
		{"float", Config{Scheme: Float}},
		{"compact", Config{Scheme: Compact}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc, err := LoadString(libraryXML, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Update churn: inserts at both ends, a wrapper, a delete.
			books := doc.Find("book")
			if _, _, err := doc.InsertAfter(books[0], "book"); err != nil {
				t.Fatal(err)
			}
			if _, _, err := doc.InsertBefore(books[2], "book"); err != nil {
				t.Fatal(err)
			}
			if _, _, err := doc.WrapParent(books[1], "featured"); err != nil {
				t.Fatal(err)
			}
			if err := doc.Delete(books[2]); err != nil {
				t.Fatal(err)
			}

			var buf strings.Builder
			if err := doc.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			back, err := LoadSaved(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatalf("LoadSaved: %v", err)
			}
			if back.SchemeName() != doc.SchemeName() {
				t.Fatalf("scheme %q, want %q", back.SchemeName(), doc.SchemeName())
			}
			if back.Stats() != doc.Stats() {
				t.Errorf("stats differ: %+v vs %+v", back.Stats(), doc.Stats())
			}
			origSecs, backSecs := doc.Find("section"), back.Find("section")
			origBooks, backBooks := doc.Find("book"), back.Find("book")
			if len(backBooks) != len(origBooks) || len(backSecs) != len(origSecs) {
				t.Fatalf("element counts differ after restore")
			}
			for i := range origBooks {
				if got, want := back.Label(backBooks[i]), doc.Label(origBooks[i]); got != want {
					t.Errorf("book %d label %q, want %q", i, got, want)
				}
			}
			for i := range origSecs {
				if got, want := back.Label(backSecs[i]), doc.Label(origSecs[i]); got != want {
					t.Errorf("section %d label %q, want %q", i, got, want)
				}
			}
			if err := back.Validate(); err != nil {
				t.Errorf("Validate after restore: %v", err)
			}
			// The restored document keeps absorbing updates the same way the
			// original does — the whole point of persisting allocation state.
			n1, c1, err := doc.InsertAfter(origBooks[0], "book")
			if err != nil {
				t.Fatal(err)
			}
			n2, c2, err := back.InsertAfter(backBooks[0], "book")
			if err != nil {
				t.Fatal(err)
			}
			if c1 != c2 {
				t.Errorf("post-restore insert relabeled %d, original %d", c2, c1)
			}
			if doc.Label(n1) != back.Label(n2) {
				t.Errorf("post-restore insert label %q, original %q", back.Label(n2), doc.Label(n1))
			}
		})
	}
}

// TestSaveRoundTripDoubleRestore saves, restores, saves again and compares
// streams byte for byte: restoration must be lossless, not merely
// equivalent.
func TestSaveRoundTripDoubleRestore(t *testing.T) {
	for _, cfg := range []Config{
		{Scheme: Prime, TrackOrder: true},
		{Scheme: Interval},
		{Scheme: Prefix2, OrderPreserving: true},
		{Scheme: Dewey},
		{Scheme: Float},
	} {
		doc, err := LoadString(libraryXML, cfg)
		if err != nil {
			t.Fatal(err)
		}
		books := doc.Find("book")
		if _, _, err := doc.InsertAfter(books[0], "book"); err != nil {
			t.Fatal(err)
		}
		var first strings.Builder
		if err := doc.Save(&first); err != nil {
			t.Fatal(err)
		}
		back, err := LoadSaved(strings.NewReader(first.String()))
		if err != nil {
			t.Fatal(err)
		}
		var second strings.Builder
		if err := back.Save(&second); err != nil {
			t.Fatal(err)
		}
		if first.String() != second.String() {
			t.Errorf("%s: save stream changed after a restore cycle", cfg.Scheme)
		}
	}
}
