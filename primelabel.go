// Package primelabel is a library for labeling dynamic ordered XML trees
// with the prime number labeling scheme of Wu, Lee & Hsu (ICDE 2004), plus
// the interval, prefix, Dewey and float baselines the paper evaluates
// against.
//
// A labeled Document answers structural queries — ancestor tests, document
// order, and an XPath subset with the order-sensitive axes following,
// preceding, following-sibling and preceding-sibling — purely from node
// labels, and absorbs insertions without relabeling existing nodes (the
// prime scheme's defining property). Global document order is maintained
// through a simultaneous-congruence (SC) table built on the Chinese
// Remainder Theorem, so order-sensitive insertions update a handful of SC
// records instead of renumbering the tree.
//
// Quick start:
//
//	doc, err := primelabel.LoadString(xml, primelabel.Config{
//		Scheme:     primelabel.Prime,
//		TrackOrder: true,
//	})
//	hits, err := doc.Query("/library//book[2]//following::book")
package primelabel

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"primelabel/internal/labeling"
	"primelabel/internal/labeling/codec"
	"primelabel/internal/labeling/compact"
	"primelabel/internal/labeling/floatlab"
	"primelabel/internal/labeling/interval"
	"primelabel/internal/labeling/prefix"
	"primelabel/internal/labeling/prime"
	"primelabel/internal/xmlparse"
	"primelabel/internal/xmltree"
	"primelabel/internal/xpath"
)

// SchemeKind selects a labeling scheme.
type SchemeKind string

// The available labeling schemes.
const (
	// Prime is the paper's top-down prime number scheme (the default).
	Prime SchemeKind = "prime"
	// PrimeBottomUp is the Figure 1 bottom-up variant (static).
	PrimeBottomUp SchemeKind = "prime-bottomup"
	// PrimeDecomposed is the layered variant for deep trees (Section 3.2's
	// tree decomposition).
	PrimeDecomposed SchemeKind = "prime-decomposed"
	// Interval is the XISS (order, size) baseline.
	Interval SchemeKind = "interval"
	// XRel is the (start, end) region baseline.
	XRel SchemeKind = "xrel"
	// Prefix1 is the unary-coded prefix baseline.
	Prefix1 SchemeKind = "prefix-1"
	// Prefix2 is the Cohen/Kaplan/Milo binary prefix baseline.
	Prefix2 SchemeKind = "prefix-2"
	// Dewey is the Dewey order labeling of Tatarinov et al.
	Dewey SchemeKind = "dewey"
	// Float is the QRS floating-point interval labeling.
	Float SchemeKind = "float"
	// Compact is the fixed-width (≤ two machine words) DFS-range ancestry
	// labeling in the style of the optimal interval schemes; static, with
	// constant-time comparison-based probes.
	Compact SchemeKind = "compact"
)

// Schemes lists every supported scheme kind.
func Schemes() []SchemeKind {
	return []SchemeKind{Prime, PrimeBottomUp, PrimeDecomposed, Interval, XRel, Prefix1, Prefix2, Dewey, Float, Compact}
}

// Config selects a scheme and its options.
type Config struct {
	// Scheme defaults to Prime.
	Scheme SchemeKind

	// TrackOrder enables document-order queries (Before, the ordered XPath
	// axes) for the prime scheme via the SC table. The interval, prefix
	// (with OrderPreserving), Dewey and float schemes carry order in their
	// labels regardless.
	TrackOrder bool

	// ReservedPrimes is the prime scheme's Opt1: how many small primes to
	// reserve for top-level nodes.
	ReservedPrimes int

	// PowerOfTwoLeaves is the prime scheme's Opt2.
	PowerOfTwoLeaves bool

	// Power2Threshold caps Opt2 exponents (0 = 16).
	Power2Threshold int

	// SCChunk is the number of nodes per SC record (0 = 5).
	SCChunk int

	// OrderSpacing spaces the prime scheme's order numbers apart so
	// order-sensitive inserts into open gaps touch a single SC record
	// (0 or 1 = the paper's dense numbering).
	OrderSpacing int

	// RecyclePrimes lets the prime scheme reuse the primes of deleted
	// nodes, bounding label growth under insert/delete churn.
	RecyclePrimes bool

	// OrderPreserving keeps prefix-scheme sibling codes in document order.
	OrderPreserving bool

	// LayerHeight is the decomposed scheme's layer height (0 = 4).
	LayerHeight int

	// KeepWhitespace retains whitespace-only text nodes when parsing.
	KeepWhitespace bool
}

// scheme materializes the configured labeling.Scheme.
func (c Config) scheme() (labeling.Scheme, error) {
	kind := c.Scheme
	if kind == "" {
		kind = Prime
	}
	switch kind {
	case Prime:
		return prime.Scheme{Opts: prime.Options{
			ReservedPrimes:   c.ReservedPrimes,
			PowerOfTwoLeaves: c.PowerOfTwoLeaves,
			Power2Threshold:  c.Power2Threshold,
			TrackOrder:       c.TrackOrder,
			SCChunk:          c.SCChunk,
			OrderSpacing:     c.OrderSpacing,
			RecyclePrimes:    c.RecyclePrimes,
		}}, nil
	case PrimeBottomUp:
		return prime.BottomUpScheme{}, nil
	case PrimeDecomposed:
		return prime.DecomposedScheme{LayerHeight: c.LayerHeight}, nil
	case Interval:
		return interval.Scheme{Variant: interval.XISS}, nil
	case XRel:
		return interval.Scheme{Variant: interval.XRel}, nil
	case Prefix1:
		return prefix.Scheme{Variant: prefix.Prefix1, OrderPreserving: c.OrderPreserving}, nil
	case Prefix2:
		return prefix.Scheme{Variant: prefix.Prefix2, OrderPreserving: c.OrderPreserving}, nil
	case Dewey:
		return prefix.DeweyScheme{}, nil
	case Float:
		return floatlab.Scheme{}, nil
	case Compact:
		return compact.Scheme{}, nil
	default:
		return nil, fmt.Errorf("primelabel: unknown scheme %q", kind)
	}
}

// Node is a handle to one element of a labeled document. The zero Node is
// invalid.
type Node struct {
	n *xmltree.Node
}

// IsZero reports whether the handle is empty.
func (n Node) IsZero() bool { return n.n == nil }

// Name returns the element's tag name.
func (n Node) Name() string {
	if n.n == nil {
		return ""
	}
	return n.n.Name
}

// Text returns the element's direct character data.
func (n Node) Text() string {
	if n.n == nil {
		return ""
	}
	return n.n.Text()
}

// Attr returns the named attribute value.
func (n Node) Attr(name string) (string, bool) {
	if n.n == nil {
		return "", false
	}
	return n.n.Attr(name)
}

// Path returns the slash-separated tag path from the root.
func (n Node) Path() string {
	if n.n == nil {
		return ""
	}
	return xmltree.PathTo(n.n)
}

// Parent returns the parent element (zero for the root).
func (n Node) Parent() Node {
	if n.n == nil || n.n.Parent == nil {
		return Node{}
	}
	return Node{n: n.n.Parent}
}

// Children returns the element children in document order.
func (n Node) Children() []Node {
	if n.n == nil {
		return nil
	}
	kids := n.n.ElementChildren()
	out := make([]Node, len(kids))
	for i, k := range kids {
		out[i] = Node{n: k}
	}
	return out
}

// Depth returns the number of edges to the root.
func (n Node) Depth() int {
	if n.n == nil {
		return 0
	}
	return n.n.Depth()
}

// Document is a labeled XML document. All methods are safe for concurrent
// use: an internal mutex serializes every operation (including queries,
// which maintain internal caches).
type Document struct {
	mu  sync.Mutex
	cfg Config
	doc *xmltree.Document
	lab labeling.Labeling
	ev  *xpath.Evaluator
}

// Load parses XML from r and labels it according to cfg.
func Load(r io.Reader, cfg Config) (*Document, error) {
	tree, err := xmlparse.ParseDocument(r, xmlparse.Options{KeepWhitespace: cfg.KeepWhitespace})
	if err != nil {
		return nil, err
	}
	return fromTree(tree, cfg)
}

// LoadString labels an in-memory XML document.
func LoadString(s string, cfg Config) (*Document, error) {
	return Load(strings.NewReader(s), cfg)
}

// fromTree labels an already-built tree.
func fromTree(tree *xmltree.Document, cfg Config) (*Document, error) {
	s, err := cfg.scheme()
	if err != nil {
		return nil, err
	}
	lab, err := s.Label(tree)
	if err != nil {
		return nil, err
	}
	return &Document{cfg: cfg, doc: tree, lab: lab, ev: xpath.New(lab)}, nil
}

// SchemeName returns the active scheme identifier (including optimization
// suffixes for the prime scheme).
func (d *Document) SchemeName() string { return d.lab.SchemeName() }

// Root returns the root element.
func (d *Document) Root() Node { return Node{n: d.doc.Root} }

// Find returns all elements with the given tag name in document order.
func (d *Document) Find(tag string) []Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	els := xmltree.ElementsByName(d.doc.Root, tag)
	out := make([]Node, len(els))
	for i, e := range els {
		out[i] = Node{n: e}
	}
	return out
}

// Stats summarizes the document's structural parameters.
type Stats struct {
	Elements  int
	MaxDepth  int
	MaxFanout int
	Leaves    int
}

// Stats computes the document's structural summary.
func (d *Document) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := xmltree.ComputeStats(d.doc)
	return Stats{Elements: st.Nodes, MaxDepth: st.MaxDepth, MaxFanout: st.MaxFan, Leaves: st.Leaves}
}

// IsAncestor reports, from labels alone, whether a is a proper ancestor of
// b.
func (d *Document) IsAncestor(a, b Node) bool {
	if a.n == nil || b.n == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lab.IsAncestor(a.n, b.n)
}

// IsParent reports, from labels, whether a is b's parent.
func (d *Document) IsParent(a, b Node) bool {
	if a.n == nil || b.n == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lab.IsParent(a.n, b.n)
}

// Before reports whether a precedes b in document order. It requires an
// order-carrying configuration (TrackOrder for the prime scheme).
func (d *Document) Before(a, b Node) (bool, error) {
	if a.n == nil || b.n == nil {
		return false, errors.New("primelabel: zero node")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lab.Before(a.n, b.n)
}

// Query evaluates an XPath-subset expression, e.g.
//
//	/play//act[3]//following::act
//
// and returns matches in document order.
func (d *Document) Query(q string) ([]Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ns, err := d.ev.EvalString(q)
	if err != nil {
		return nil, err
	}
	out := make([]Node, len(ns))
	for i, n := range ns {
		out[i] = Node{n: n}
	}
	return out, nil
}

// InsertChild inserts a new element with the given tag as the idx-th child
// of parent, returning the new node and the number of labels written —
// including the new node's — which for the prime scheme stays O(1)
// regardless of document size.
func (d *Document) InsertChild(parent Node, idx int, tag string) (Node, int, error) {
	if parent.n == nil {
		return Node{}, 0, errors.New("primelabel: zero parent")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := xmltree.NewElement(tag)
	// Convert the element-index to a raw child index (text nodes
	// interleave).
	raw := rawChildIndex(parent.n, idx)
	count, err := d.lab.InsertChildAt(parent.n, raw, n)
	if err != nil {
		return Node{}, count, err
	}
	d.ev.Reindex()
	return Node{n: n}, count, nil
}

// rawChildIndex maps an index among element children to an index among all
// children.
func rawChildIndex(parent *xmltree.Node, elemIdx int) int {
	if elemIdx <= 0 {
		return 0
	}
	seen := 0
	for i, c := range parent.Children {
		if c.Kind != xmltree.ElementNode {
			continue
		}
		seen++
		if seen == elemIdx {
			return i + 1
		}
	}
	return len(parent.Children)
}

// InsertBefore inserts a new element with the given tag immediately before
// sibling.
func (d *Document) InsertBefore(sibling Node, tag string) (Node, int, error) {
	if sibling.n == nil || sibling.n.Parent == nil {
		return Node{}, 0, errors.New("primelabel: node has no parent")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	parent := sibling.n.Parent
	n := xmltree.NewElement(tag)
	count, err := d.lab.InsertChildAt(parent, parent.ChildIndex(sibling.n), n)
	if err != nil {
		return Node{}, count, err
	}
	d.ev.Reindex()
	return Node{n: n}, count, nil
}

// InsertAfter inserts a new element with the given tag immediately after
// sibling.
func (d *Document) InsertAfter(sibling Node, tag string) (Node, int, error) {
	if sibling.n == nil || sibling.n.Parent == nil {
		return Node{}, 0, errors.New("primelabel: node has no parent")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	parent := sibling.n.Parent
	n := xmltree.NewElement(tag)
	count, err := d.lab.InsertChildAt(parent, parent.ChildIndex(sibling.n)+1, n)
	if err != nil {
		return Node{}, count, err
	}
	d.ev.Reindex()
	return Node{n: n}, count, nil
}

// WrapParent inserts a new element with the given tag as target's parent
// (target becomes its only child).
func (d *Document) WrapParent(target Node, tag string) (Node, int, error) {
	if target.n == nil {
		return Node{}, 0, errors.New("primelabel: zero node")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := xmltree.NewElement(tag)
	count, err := d.lab.WrapNode(target.n, n)
	if err != nil {
		return Node{}, count, err
	}
	d.ev.Reindex()
	return Node{n: n}, count, nil
}

// Delete removes the subtree rooted at n. No other labels change.
func (d *Document) Delete(n Node) error {
	if n.n == nil {
		return errors.New("primelabel: zero node")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.lab.Delete(n.n); err != nil {
		return err
	}
	d.ev.Reindex()
	return nil
}

// LabelBits returns the size in bits of n's label.
func (d *Document) LabelBits(n Node) int {
	if n.n == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lab.LabelBits(n.n)
}

// MaxLabelBits returns the fixed-length label size of the document.
func (d *Document) MaxLabelBits() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lab.MaxLabelBits()
}

// Label renders n's label in scheme-specific human-readable form: the
// integer label for the prime schemes, "(a,b)" for interval schemes, the
// bit string for prefix schemes, the dotted path for Dewey.
func (d *Document) Label(n Node) string {
	if n.n == nil {
		return ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch l := d.lab.(type) {
	case *prime.Labeling:
		return l.LabelOf(n.n).String()
	case *prime.BottomUpLabeling:
		return l.LabelOf(n.n).String()
	case *prime.DecomposedLabeling:
		parts := []string{}
		for _, e := range l.ChainOf(n.n) {
			parts = append(parts, e.String())
		}
		return strings.Join(parts, ".")
	case *interval.Labeling:
		a, b, ok := l.Interval(n.n)
		if !ok {
			return ""
		}
		return fmt.Sprintf("(%d,%d)", a, b)
	case *prefix.Labeling:
		bits, ok := l.BitsOf(n.n)
		if !ok {
			return ""
		}
		if bits.Len() == 0 {
			return "ε"
		}
		return bits.String()
	case *prefix.DeweyLabeling:
		s, _ := l.DeweyOf(n.n)
		if s == "" {
			return "ε"
		}
		return s
	case *floatlab.Labeling:
		a, b, ok := l.Interval(n.n)
		if !ok {
			return ""
		}
		return fmt.Sprintf("(%g,%g)", a, b)
	case *compact.Labeling:
		cl, ok := l.LabelOf(n.n)
		if !ok {
			return ""
		}
		return fmt.Sprintf("(%d,%d)", cl.Start, cl.End)
	default:
		return fmt.Sprintf("<%d bits>", d.lab.LabelBits(n.n))
	}
}

// SelfLabel returns the prime scheme's self-label for n (empty for other
// schemes).
func (d *Document) SelfLabel(n Node) string {
	if n.n == nil {
		return ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if l, ok := d.lab.(*prime.Labeling); ok {
		return l.SelfLabelOf(n.n).String()
	}
	return ""
}

// ErrUnsupportedPersist reports a Save on a scheme with no persistence
// codec (the static study variants prime-bottomup and prime-decomposed).
var ErrUnsupportedPersist = codec.ErrUnsupported

// Save persists the labeled document — tree, labels, allocation state and,
// for the prime scheme, the SC table — in a compact binary format, so
// LoadSaved can restore it without relabeling (dynamic updates produce
// labels no relabeling pass would regenerate). The prime, interval, XRel,
// prefix, Dewey, float and compact schemes are persistable; Save returns
// ErrUnsupportedPersist for the static study variants prime-bottomup and
// prime-decomposed.
func (d *Document) Save(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return codec.Marshal(d.lab, w)
}

// LoadSaved restores a document persisted with Save and verifies its
// consistency. Streams written by older versions of Save (which emitted the
// prime scheme's bare format without the codec header) load transparently.
func LoadSaved(r io.Reader) (*Document, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(codec.Magic))
	legacyPrime := err != nil || string(head) != string(codec.Magic)
	var lab labeling.Labeling
	if legacyPrime {
		lab, err = prime.Unmarshal(br)
	} else {
		lab, err = codec.Unmarshal(br)
	}
	if err != nil {
		return nil, err
	}
	return &Document{cfg: configOf(lab), doc: lab.Doc(), lab: lab, ev: xpath.New(lab)}, nil
}

// configOf reconstructs the Config a restored labeling was built with, as
// far as the labeling records it.
func configOf(lab labeling.Labeling) Config {
	switch l := lab.(type) {
	case *prime.Labeling:
		o := l.Options()
		return Config{
			Scheme:           Prime,
			TrackOrder:       o.TrackOrder,
			ReservedPrimes:   o.ReservedPrimes,
			PowerOfTwoLeaves: o.PowerOfTwoLeaves,
			Power2Threshold:  o.Power2Threshold,
			SCChunk:          o.SCChunk,
			OrderSpacing:     o.OrderSpacing,
			RecyclePrimes:    o.RecyclePrimes,
		}
	case *interval.Labeling:
		if l.Variant() == interval.XRel {
			return Config{Scheme: XRel}
		}
		return Config{Scheme: Interval}
	case *prefix.Labeling:
		sc := l.Scheme()
		kind := Prefix1
		if sc.Variant == prefix.Prefix2 {
			kind = Prefix2
		}
		return Config{Scheme: kind, OrderPreserving: sc.OrderPreserving}
	case *prefix.DeweyLabeling:
		return Config{Scheme: Dewey}
	case *floatlab.Labeling:
		return Config{Scheme: Float}
	case *compact.Labeling:
		return Config{Scheme: Compact}
	default:
		return Config{}
	}
}

// WriteXML serializes the document.
func (d *Document) WriteXML(w io.Writer, indent string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Write(w, xmltree.WriteOptions{Indent: indent})
}

// XML returns the document serialized compactly.
func (d *Document) XML() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.String()
}

// Validate verifies the labeling's internal invariants. For the prime
// scheme this checks every label against its parent-product definition,
// self-prime uniqueness, and SC-table consistency; for all schemes on
// documents up to exhaustiveLimit elements it additionally compares every
// IsAncestor answer against tree ground truth (O(n²)).
func (d *Document) Validate() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if l, ok := d.lab.(*prime.Labeling); ok {
		if err := l.Check(); err != nil {
			return err
		}
	}
	const exhaustiveLimit = 2000
	if len(xmltree.Elements(d.doc.Root)) <= exhaustiveLimit {
		return labeling.CheckAgainstTree(d.lab)
	}
	return nil
}
