// Command doccheck enforces the repo's godoc contract: every exported
// identifier in the packages it is pointed at must carry a documentation
// comment. The server packages use those comments to state each API's
// concurrency and durability contract, so a missing comment is not a style
// nit — it is an undocumented contract. `make lint` runs it over the server
// packages and fails the build on any omission.
//
// Usage:
//
//	doccheck ./internal/server ./internal/server/api
//	doccheck -schemes-doc docs/LABELING.md
//
// Each argument is a directory containing one Go package. Test files are
// ignored. With -schemes-doc the named markdown file is additionally
// checked against the scheme registry (buildinfo.Schemes): every compiled-in
// labeling scheme must appear, in backticks, in some section heading — so a
// scheme added to the binaries cannot ship undocumented. The exit status is
// 1 if any exported identifier lacks documentation or any scheme lacks a
// section, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"

	"primelabel/internal/buildinfo"
)

func main() {
	schemesDoc := flag.String("schemes-doc", "",
		"markdown file that must document every scheme in buildinfo.Schemes under a heading")
	flag.Parse()
	if *schemesDoc == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-schemes-doc FILE] <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range flag.Args() {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		bad += n
	}
	if *schemesDoc != "" {
		n, err := checkSchemesDoc(*schemesDoc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", *schemesDoc, err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d documentation omission(s)\n", bad)
		os.Exit(1)
	}
}

// checkSchemesDoc verifies that every registered labeling scheme has a
// section in the given markdown file: the scheme's name, in backticks, on a
// heading line. This keeps the scheme guide exhaustive by construction —
// registering a scheme in buildinfo without documenting it fails make
// verify.
func checkSchemesDoc(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var headings []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "#") {
			headings = append(headings, line)
		}
	}
	bad := 0
	for _, scheme := range buildinfo.Schemes {
		found := false
		for _, h := range headings {
			if strings.Contains(h, "`"+scheme+"`") {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%s: scheme %q has no section heading (expected `%s` in a heading)\n",
				path, scheme, scheme)
			bad++
		}
	}
	return bad, nil
}

// checkDir parses one package directory and reports every exported
// identifier without a doc comment, returning the count.
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: exported %s %s has no doc comment\n", p.Filename, p.Line, kind, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return bad, nil
}

// exportedReceiver reports whether a function is package-level or a method
// on an exported type; methods on unexported types are not part of the
// package's documented surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl handles const/var/type declarations: each exported name must
// be covered by a doc comment on the declaration group, its own spec, or an
// inline comment.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}
