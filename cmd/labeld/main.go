// Command labeld serves labeled XML documents over HTTP/JSON: load a
// document, ask ancestor/parent/order questions answered purely from labels,
// evaluate XPath-subset queries, and apply dynamic updates (insert, wrap,
// delete) that report the paper's cost metric — how many nodes were
// relabeled. See README.md "Running the server" for the endpoint reference.
//
// Usage:
//
//	labeld -addr :8080
//	labeld -addr :8080 -preload catalog.xml -scheme prime
//	labeld -addr :8080 -data-dir /var/lib/labeld
//	labeld -addr :8081 -data-dir /var/lib/labeld-replica -follow http://primary:8080
//	labeld -promote http://replica:8081
//
// With -data-dir the server is durable: every document is snapshotted and
// every acknowledged update is journaled (fsync'd by default), so a crash —
// even kill -9 — loses nothing; on the next start the same -data-dir
// restores every document, labels and relabel counters intact. See
// docs/OPERATIONS.md for the full operational reference.
//
// The server shuts down gracefully on SIGINT/SIGTERM, completing in-flight
// requests and writing final snapshots before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"primelabel/internal/buildinfo"
	"primelabel/internal/server"
	"primelabel/internal/server/api"
	"primelabel/internal/server/client"
)

// splitList parses a comma-separated flag value into trimmed non-empty
// entries (nil for an empty value).
func splitList(v string) []string {
	if v == "" {
		return nil
	}
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// newLogger builds the process logger from the -log-format and -log-level
// flags. Records go to w (the same stream as the startup lines, so one
// pipeline captures both).
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "labeld:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("labeld", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cache := fs.Int("cache", 256, "per-document query cache capacity (negative disables)")
	queryParallel := fs.Int("query-parallel", 0, "workers for parallel query evaluation (0 = one per CPU, 1 = sequential)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request handling timeout")
	grace := fs.Duration("grace", 10*time.Second, "graceful shutdown grace period")
	preload := fs.String("preload", "", "XML file to load at startup (document name = file basename)")
	scheme := fs.String("scheme", "prime", "labeling scheme for -preload")
	dataDir := fs.String("data-dir", "", "directory for snapshots and update journals (empty = in-memory only)")
	fsync := fs.Bool("fsync", true, "flush journal appends and snapshots to stable storage before acknowledging")
	snapshotEvery := fs.Int("snapshot-every", 1024, "journal records per document before a background snapshot compaction")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	slowRequest := fs.Duration("slow-request", 0, "log requests slower than this in full, with their span breakdown (0 disables)")
	traceBuffer := fs.Int("trace-buffer", 256, "completed traces retained for /debug/traces (negative disables)")
	queryStatsShapes := fs.Int("querystats-shapes", 4096, "distinct (document, query shape) entries tracked for /debug/querystats before LRU eviction")
	debugAddr := fs.String("debug-addr", "", "extra listener serving net/http/pprof plus /debug/traces and /metrics (empty disables)")
	freezeAfter := fs.Duration("freeze-after", 0, "re-label a document into compact fixed-width labels after this long without a write (0 disables adaptive freezing)")
	freezeMinReads := fs.Int("freeze-min-reads", 1, "reads since the last write before a document qualifies for freezing")
	follow := fs.String("follow", "", "run as a read-only replica streaming the journal from this primary base URL (e.g. http://primary:8080)")
	followPoll := fs.Duration("follow-poll", 0, "how often a replica re-lists the primary's documents (0 = server default)")
	promote := fs.String("promote", "", "promote the replica at this base URL to primary (POST /promote) and exit")
	clusterSelf := fs.String("cluster-self", "", "this node's advertised base URL in the cluster (required with -cluster-nodes)")
	clusterNodes := fs.String("cluster-nodes", "", "comma-separated base URLs of every cluster member, self included (enables the cluster fabric: /topology, placement redirects, failover)")
	clusterPin := fs.String("cluster-pin", "", "comma-separated doc=url placement overrides that bypass the hash ring")
	clusterVNodes := fs.Int("cluster-vnodes", 0, "virtual nodes per member on the placement ring (0 = default)")
	clusterProbe := fs.Duration("cluster-probe", 0, "cluster health-probe sweep interval (0 = default)")
	failoverAfter := fs.Duration("failover-after", 0, "promote the designated successor after the followed primary has been unreachable this long (0 = default, negative disables)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("labeld"))
		return nil
	}
	if *promote != "" {
		resp, err := client.New(*promote, nil).Promote()
		if err != nil {
			return fmt.Errorf("promote %s: %w", *promote, err)
		}
		if resp.Promoted {
			fmt.Fprintf(stdout, "labeld: promoted %s to primary (%d document(s) now writable)\n",
				*promote, resp.Documents)
		} else {
			fmt.Fprintf(stdout, "labeld: %s is already a primary\n", *promote)
		}
		return nil
	}

	logger, err := newLogger(stdout, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	var pins map[string]string
	if *clusterPin != "" {
		pins = make(map[string]string)
		for _, pair := range strings.Split(*clusterPin, ",") {
			doc, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || doc == "" || url == "" {
				return fmt.Errorf("bad -cluster-pin entry %q (want doc=url)", pair)
			}
			pins[doc] = url
		}
	}

	srv, err := server.New(server.Config{
		Addr:             *addr,
		CacheSize:        *cache,
		QueryParallelism: *queryParallel,
		RequestTimeout:   *timeout,
		ShutdownGrace:    *grace,
		DataDir:          *dataDir,
		NoFsync:          !*fsync,
		SnapshotEvery:    *snapshotEvery,
		Logger:           logger,
		SlowRequest:      *slowRequest,
		TraceBuffer:      *traceBuffer,
		QueryStatsShapes: *queryStatsShapes,
		DebugAddr:        *debugAddr,
		FollowURL:        *follow,
		FollowPoll:       *followPoll,
		FreezeAfter:      *freezeAfter,
		FreezeMinReads:   *freezeMinReads,
		ClusterSelf:      *clusterSelf,
		ClusterNodes:     splitList(*clusterNodes),
		ClusterPins:      pins,
		ClusterVNodes:    *clusterVNodes,
		ClusterProbe:     *clusterProbe,
		FailoverAfter:    *failoverAfter,
	})
	if err != nil {
		return err
	}

	if *dataDir != "" {
		names, err := srv.Recover()
		if err != nil {
			return fmt.Errorf("recover from %s: %w", *dataDir, err)
		}
		fmt.Fprintf(stdout, "labeld: recovered %d document(s) from %s\n", len(names), *dataDir)
		for _, n := range names {
			fmt.Fprintf(stdout, "labeld: recovered %q\n", n)
		}
	}

	if *preload != "" {
		xml, err := os.ReadFile(*preload)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(*preload), filepath.Ext(*preload))
		info, err := srv.Store().Load(ctx, name, api.LoadRequest{
			XML:        string(xml),
			Scheme:     *scheme,
			TrackOrder: true,
		})
		if err != nil {
			return fmt.Errorf("preload %s: %w", *preload, err)
		}
		fmt.Fprintf(stdout, "labeld: preloaded %q (%d elements, scheme %s)\n",
			info.Name, info.Elements, info.Scheme)
	}

	bound, err := srv.Start()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "labeld: listening on %s\n", bound)
	if *follow != "" {
		fmt.Fprintf(stdout, "labeld: read-only replica following %s (promote with labeld -promote)\n", *follow)
	}
	if *clusterNodes != "" {
		fmt.Fprintf(stdout, "labeld: cluster member %s of [%s] (topology at /topology)\n", *clusterSelf, *clusterNodes)
	}

	<-ctx.Done()
	fmt.Fprintln(stdout, "labeld: shutting down")
	return srv.Shutdown(context.Background())
}
