package main

import (
	"bufio"
	"context"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"primelabel/internal/server/api"
	"primelabel/internal/server/client"
)

// startRun launches run() with the given extra args, waits for the
// "listening on" line, and returns a client plus the run error channel. The
// remaining output keeps draining in the background (the pipe would
// otherwise block run's shutdown message) and is available via rest after
// errc yields.
func startRun(t *testing.T, ctx context.Context, extra ...string) (*client.Client, chan error, func() string) {
	t.Helper()
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() {
		err := run(ctx, args, pw)
		pw.Close()
		errc <- err
	}()
	sc := bufio.NewScanner(pr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.TrimSpace(line[i+len("listening on "):])
			var mu sync.Mutex
			var tail strings.Builder
			go func() {
				for sc.Scan() {
					mu.Lock()
					tail.WriteString(sc.Text() + "\n")
					mu.Unlock()
				}
			}()
			rest := func() string {
				mu.Lock()
				defer mu.Unlock()
				return tail.String()
			}
			return client.New("http://"+addr, nil), errc, rest
		}
	}
	select {
	case err := <-errc:
		t.Fatalf("run exited before listening: %v", err)
	default:
		t.Fatal("output closed before listening line")
	}
	return nil, nil, nil
}

func TestRunServesAndStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, errc, rest := startRun(t, ctx)

	h, err := c.Healthz()
	if err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v, %v", h, err)
	}
	if _, err := c.Load("d", api.LoadRequest{XML: "<a><b/></a>"}); err != nil {
		t.Fatal(err)
	}
	ok, err := c.IsAncestor("d", 0, 1)
	if err != nil || !ok {
		t.Fatalf("ancestor: %v, %v", ok, err)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop after cancel")
	}
	if !strings.Contains(rest(), "shutting down") {
		t.Errorf("shutdown message missing from output: %q", rest())
	}
}

// TestRunStopsOnSIGINT exercises the same signal wiring main installs.
func TestRunStopsOnSIGINT(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c, errc, _ := startRun(t, ctx)
	if _, err := c.Healthz(); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop after SIGINT")
	}
}

func TestRunPreload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.xml")
	if err := os.WriteFile(path, []byte("<c><x/><y/></c>"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, errc, _ := startRun(t, ctx, "-preload", path)

	info, err := c.Info("catalog")
	if err != nil || info.Elements != 3 {
		t.Fatalf("preloaded doc: %+v, %v", info, err)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-preload", "/does/not/exist.xml", "-addr", "127.0.0.1:0"}, io.Discard); err == nil {
		t.Fatal("missing preload file accepted")
	}
}

// startBinary launches a labeld binary with the given flags, waits for its
// "listening on" line, and returns a client plus the running process.
func startBinary(t *testing.T, bin string, flags ...string) (*client.Client, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, flags...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.TrimSpace(line[i+len("listening on "):])
			go func() { // keep draining so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return client.New("http://"+addr, nil), cmd
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("labeld binary exited before listening")
	return nil, nil
}

// TestKillDashNineRecovery is the acceptance test for the durability layer:
// build the real binary, drive an update burst over HTTP, SIGKILL the
// process with no warning, restart it on the same -data-dir, and require
// labels, relabel counters and SC order answers to match the last
// acknowledged pre-crash state exactly.
func TestKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	work := t.TempDir()
	bin := filepath.Join(work, "labeld.test.bin")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(work, "data")

	c, proc := startBinary(t, bin, "-data-dir", dataDir)
	killed := false
	defer func() {
		if !killed {
			proc.Process.Kill()
			proc.Wait()
		}
	}()

	xml := "<store><shelf><book><title>A</title></book><book><title>B</title></book></shelf><shelf><book><title>C</title></book></shelf></store>"
	if _, err := c.Load("books", api.LoadRequest{XML: xml, TrackOrder: true}); err != nil {
		t.Fatal(err)
	}
	// Update burst: every acknowledged response was journaled and fsync'd
	// before the server answered, so all of it must survive the kill.
	for i := 0; i < 12; i++ {
		if _, err := c.Insert("books", 0, i%3, "shelf"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Wrap("books", 2, "featured"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteNode("books", 5); err != nil {
		t.Fatal(err)
	}
	want, err := c.Info("books")
	if err != nil {
		t.Fatal(err)
	}
	wantQ, err := c.Query("books", "//*")
	if err != nil {
		t.Fatal(err)
	}
	var wantBefore []bool
	for b := 1; b <= 5; b++ {
		ok, err := c.Before("books", 0, b)
		if err != nil {
			t.Fatal(err)
		}
		wantBefore = append(wantBefore, ok)
	}

	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()
	killed = true

	c2, proc2 := startBinary(t, bin, "-data-dir", dataDir)
	defer func() {
		proc2.Process.Kill()
		proc2.Wait()
	}()
	got, err := c2.Info("books")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("info after kill -9 restart = %+v, want %+v", got, want)
	}
	gotQ, err := c2.Query("books", "//*")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotQ.Nodes) != len(wantQ.Nodes) {
		t.Fatalf("element count %d, want %d", len(gotQ.Nodes), len(wantQ.Nodes))
	}
	for i := range wantQ.Nodes {
		if gotQ.Nodes[i] != wantQ.Nodes[i] {
			t.Errorf("node %d = %+v, want %+v", i, gotQ.Nodes[i], wantQ.Nodes[i])
		}
	}
	for b := 1; b <= 5; b++ {
		ok, err := c2.Before("books", 0, b)
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantBefore[b-1] {
			t.Errorf("before(0,%d) = %v, want %v", b, ok, wantBefore[b-1])
		}
	}
	// The restarted server keeps taking durable updates.
	if _, err := c2.Insert("books", 0, 0, "shelf"); err != nil {
		t.Fatal(err)
	}
}

// TestRunDataDirRestart drives the in-process run() path: durable flags,
// graceful shutdown (final snapshot), recovery log lines on restart.
func TestRunDataDirRestart(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, errc, _ := startRun(t, ctx, "-data-dir", dataDir, "-snapshot-every", "4")
	if _, err := c.Load("d", api.LoadRequest{XML: "<a><b/><c/></a>"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("d", 0, 0, "n"); err != nil {
		t.Fatal(err)
	}
	h, err := c.Healthz()
	if err != nil || !h.Durable {
		t.Fatalf("healthz = %+v, %v; want durable", h, err)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	c2, errc2, _ := startRun(t, ctx2, "-data-dir", dataDir)
	info, err := c2.Info("d")
	if err != nil || info.Elements != 4 || info.Generation != 1 || !info.Durable {
		t.Fatalf("recovered info = %+v, %v", info, err)
	}
	metrics, err := c2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "labeld_recovered_documents_total 1") {
		t.Error("metrics missing recovered-documents count")
	}
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatal(err)
	}
}
