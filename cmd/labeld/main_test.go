package main

import (
	"bufio"
	"context"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"primelabel/internal/server/api"
	"primelabel/internal/server/client"
)

// startRun launches run() with the given extra args, waits for the
// "listening on" line, and returns a client plus the run error channel. The
// remaining output keeps draining in the background (the pipe would
// otherwise block run's shutdown message) and is available via rest after
// errc yields.
func startRun(t *testing.T, ctx context.Context, extra ...string) (*client.Client, chan error, func() string) {
	t.Helper()
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() {
		err := run(ctx, args, pw)
		pw.Close()
		errc <- err
	}()
	sc := bufio.NewScanner(pr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.TrimSpace(line[i+len("listening on "):])
			var mu sync.Mutex
			var tail strings.Builder
			go func() {
				for sc.Scan() {
					mu.Lock()
					tail.WriteString(sc.Text() + "\n")
					mu.Unlock()
				}
			}()
			rest := func() string {
				mu.Lock()
				defer mu.Unlock()
				return tail.String()
			}
			return client.New("http://"+addr, nil), errc, rest
		}
	}
	select {
	case err := <-errc:
		t.Fatalf("run exited before listening: %v", err)
	default:
		t.Fatal("output closed before listening line")
	}
	return nil, nil, nil
}

func TestRunServesAndStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, errc, rest := startRun(t, ctx)

	h, err := c.Healthz()
	if err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v, %v", h, err)
	}
	if _, err := c.Load("d", api.LoadRequest{XML: "<a><b/></a>"}); err != nil {
		t.Fatal(err)
	}
	ok, err := c.IsAncestor("d", 0, 1)
	if err != nil || !ok {
		t.Fatalf("ancestor: %v, %v", ok, err)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop after cancel")
	}
	if !strings.Contains(rest(), "shutting down") {
		t.Errorf("shutdown message missing from output: %q", rest())
	}
}

// TestRunStopsOnSIGINT exercises the same signal wiring main installs.
func TestRunStopsOnSIGINT(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c, errc, _ := startRun(t, ctx)
	if _, err := c.Healthz(); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop after SIGINT")
	}
}

func TestRunPreload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.xml")
	if err := os.WriteFile(path, []byte("<c><x/><y/></c>"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, errc, _ := startRun(t, ctx, "-preload", path)

	info, err := c.Info("catalog")
	if err != nil || info.Elements != 3 {
		t.Fatalf("preloaded doc: %+v, %v", info, err)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-preload", "/does/not/exist.xml", "-addr", "127.0.0.1:0"}, io.Discard); err == nil {
		t.Fatal("missing preload file accepted")
	}
}
