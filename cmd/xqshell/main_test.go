package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `<play><title>T</title><act><scene><line>a</line><line>b</line></scene></act><act><scene><line>c</line></scene></act></play>`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "play.xml")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQueriesFromArgs(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-file", writeSample(t), "//line", "/play/act[2]//line"}, nil, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "//line  →  3 node(s)") {
		t.Errorf("missing //line count:\n%s", got)
	}
	if !strings.Contains(got, "/play/act[2]//line  →  1 node(s)") {
		t.Errorf("missing act[2] count:\n%s", got)
	}
	if !strings.Contains(got, "label=") {
		t.Errorf("missing labels:\n%s", got)
	}
}

func TestRunQueriesFromStdin(t *testing.T) {
	var out strings.Builder
	stdin := strings.NewReader("# comment\n//line\n\n//act\n")
	if err := run([]string{"-file", writeSample(t), "-text"}, stdin, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "//line  →  3 node(s)") || !strings.Contains(got, "//act  →  2 node(s)") {
		t.Errorf("stdin queries not executed:\n%s", got)
	}
	if !strings.Contains(got, `"a"`) {
		t.Errorf("-text output missing:\n%s", got)
	}
}

func TestRunLimit(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-file", writeSample(t), "-limit", "1", "//line"}, nil, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "… 2 more") {
		t.Errorf("limit not applied:\n%s", out.String())
	}
}

func TestRunDataset(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dataset", "D1", "//article"}, nil, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "node(s)") {
		t.Errorf("dataset query produced no output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, strings.NewReader(""), io.Discard, io.Discard); err == nil {
		t.Error("missing -file/-dataset should fail")
	}
	if err := run([]string{"-file", "/no/such.xml", "//a"}, nil, io.Discard, io.Discard); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-dataset", "D99", "//a"}, nil, io.Discard, io.Discard); err == nil {
		t.Error("bad dataset should fail")
	}
	if err := run([]string{"-file", writeSample(t), "///bad"}, nil, io.Discard, io.Discard); err == nil {
		t.Error("bad query should fail")
	}
	if err := run([]string{"-scheme", "bogus", "-dataset", "D1", "//a"}, nil, io.Discard, io.Discard); err == nil {
		t.Error("bad scheme should fail")
	}
}
