// Command xqshell runs XPath-subset queries over a labeled XML document.
// Queries come from the command line or, with none given, from stdin lines.
//
// Usage:
//
//	xqshell -file play.xml "/play//act[2]//line" "//act//following-sibling::act"
//	xqshell -file play.xml < queries.txt
//	xqshell -dataset D8 "//play//speech"    # run against a generated dataset
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"primelabel"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "xqshell:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("xqshell", flag.ContinueOnError)
	fs.SetOutput(stderr)
	file := fs.String("file", "", "XML file to query")
	dataset := fs.String("dataset", "", "generated dataset id (D1..D9) instead of a file")
	scheme := fs.String("scheme", "prime", "labeling scheme")
	showText := fs.Bool("text", false, "print node text content too")
	limit := fs.Int("limit", 20, "max matches to print per query (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := primelabel.Config{
		Scheme:          primelabel.SchemeKind(*scheme),
		TrackOrder:      true,
		OrderPreserving: true,
	}
	var doc *primelabel.Document
	var err error
	switch {
	case *dataset != "":
		doc, err = primelabel.GenerateDataset(*dataset, cfg)
	case *file != "":
		var f *os.File
		f, err = os.Open(*file)
		if err == nil {
			doc, err = primelabel.Load(f, cfg)
			f.Close()
		}
	default:
		return fmt.Errorf("provide -file or -dataset")
	}
	if err != nil {
		return err
	}

	queries := fs.Args()
	if len(queries) == 0 {
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			q := strings.TrimSpace(sc.Text())
			if q != "" && !strings.HasPrefix(q, "#") {
				queries = append(queries, q)
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	var firstErr error
	for _, q := range queries {
		hits, err := doc.Query(q)
		if err != nil {
			fmt.Fprintf(stderr, "xqshell: %s: %v\n", q, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fmt.Fprintf(stdout, "%s  →  %d node(s)\n", q, len(hits))
		for i, h := range hits {
			if *limit > 0 && i >= *limit {
				fmt.Fprintf(stdout, "  … %d more\n", len(hits)-i)
				break
			}
			line := fmt.Sprintf("  %s  label=%s", h.Path(), doc.Label(h))
			if *showText {
				if txt := h.Text(); txt != "" {
					line += fmt.Sprintf("  %q", txt)
				}
			}
			fmt.Fprintln(stdout, line)
		}
	}
	return firstErr
}
