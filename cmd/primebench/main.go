// Command primebench regenerates the tables and figures of the paper's
// evaluation. With no arguments it runs every experiment; otherwise it runs
// only the named ones.
//
// Usage:
//
//	primebench              # run everything
//	primebench -list        # list experiment ids
//	primebench fig14 fig18  # run selected experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"primelabel/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "primebench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("primebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available experiments and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: primebench [-list] [experiment ...]\n\nExperiments:\n")
		for _, r := range bench.All() {
			fmt.Fprintf(stderr, "  %-8s %s\n", r.ID, r.Desc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, r := range bench.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", r.ID, r.Desc)
		}
		return nil
	}

	var runners []bench.Runner
	if fs.NArg() == 0 {
		runners = bench.All()
	} else {
		for _, id := range fs.Args() {
			r, err := bench.ByID(id)
			if err != nil {
				fs.Usage()
				return err
			}
			runners = append(runners, r)
		}
	}
	for _, r := range runners {
		res, err := r.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		res.Fprint(stdout)
	}
	return nil
}
