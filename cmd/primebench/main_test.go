package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"fig3", "fig4", "fig5", "table1", "fig13", "fig14", "table2", "fig15", "fig16", "fig17", "fig18"} {
		if !strings.Contains(got, id) {
			t.Errorf("list missing %s:\n%s", id, got)
		}
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	// Run the cheap analytic experiments end to end.
	var out strings.Builder
	if err := run([]string{"fig3", "fig4", "fig5", "table1"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"== fig3:", "== fig4:", "== fig5:", "== table1:",
		"Shakespeare's Plays", "estimated_bits",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-nope"}, io.Discard, io.Discard); err == nil {
		t.Error("bad flag should fail")
	}
}
