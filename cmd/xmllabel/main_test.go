package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `<catalog><book><title>Dune</title></book><book><title>Foundation</title></book></catalog>`

func TestRunStdin(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"catalog", "catalog/book/title", "scheme=prime", "elements=5"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFileAndFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-scheme", "prefix-2", "-summary", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "catalog/book/title") {
		t.Error("-summary should suppress per-node output")
	}
	if !strings.Contains(got, "scheme=prefix-2") {
		t.Errorf("wrong scheme line:\n%s", got)
	}
}

func TestRunOptions(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-opt2", "-order", "-opt1", "-1"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scheme=prime+opt1+opt2") {
		t.Errorf("optimization suffixes missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, strings.NewReader("<a><b></a>"), &strings.Builder{}); err == nil {
		t.Error("malformed XML should fail")
	}
	if err := run([]string{"-scheme", "bogus"}, strings.NewReader(sample), &strings.Builder{}); err == nil {
		t.Error("unknown scheme should fail")
	}
	if err := run([]string{"/no/such/file.xml"}, nil, &strings.Builder{}); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-badflag"}, nil, &strings.Builder{}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunStream(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-stream", "-opt2"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "scheme=prime(stream) elements=5") {
		t.Errorf("stream summary wrong:\n%s", got)
	}
	if !strings.Contains(got, "catalog/book/title") {
		t.Errorf("stream per-node output missing:\n%s", got)
	}
	if err := run([]string{"-stream", "-scheme", "interval"}, strings.NewReader(sample), &strings.Builder{}); err == nil {
		t.Error("-stream with non-prime scheme should fail")
	}
	if err := run([]string{"-stream", "-opt1", "-1"}, strings.NewReader(sample), &strings.Builder{}); err == nil {
		t.Error("-stream with auto opt1 should fail")
	}
}
