// Command xmllabel labels an XML document with a chosen scheme and prints
// each element's path and label, followed by a storage summary.
//
// Usage:
//
//	xmllabel -scheme prime -opt2 -order file.xml
//	cat file.xml | xmllabel -scheme prefix-2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"primelabel"
	"primelabel/internal/buildinfo"
	"primelabel/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xmllabel:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("xmllabel", flag.ContinueOnError)
	scheme := fs.String("scheme", "prime", "labeling scheme: prime, prime-bottomup, prime-decomposed, interval, xrel, prefix-1, prefix-2, dewey, float")
	order := fs.Bool("order", false, "track document order (prime scheme SC table)")
	opt1 := fs.Int("opt1", 0, "reserve N small primes for top-level nodes (-1 = auto)")
	opt2 := fs.Bool("opt2", false, "label leaves with powers of two")
	summary := fs.Bool("summary", false, "print only the storage summary")
	streaming := fs.Bool("stream", false, "one-pass streaming labeler (prime scheme only, no DOM)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("xmllabel"))
		return nil
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	if *streaming {
		if *scheme != "prime" {
			return fmt.Errorf("-stream supports only the prime scheme")
		}
		count, maxBits := 0, 0
		err := stream.Label(in, stream.Options{
			ReservedPrimes:   *opt1,
			PowerOfTwoLeaves: *opt2,
		}, func(e stream.Element) error {
			count++
			if b := e.Label.BitLen(); b > maxBits {
				maxBits = b
			}
			if !*summary {
				fmt.Fprintf(stdout, "%-40s %s\n", e.Path, e.Label)
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nscheme=prime(stream) elements=%d max_label_bits=%d\n", count, maxBits)
		return nil
	}

	doc, err := primelabel.Load(in, primelabel.Config{
		Scheme:           primelabel.SchemeKind(*scheme),
		TrackOrder:       *order,
		ReservedPrimes:   *opt1,
		PowerOfTwoLeaves: *opt2,
		OrderPreserving:  *order,
	})
	if err != nil {
		return err
	}

	if !*summary {
		var walk func(n primelabel.Node)
		walk = func(n primelabel.Node) {
			fmt.Fprintf(stdout, "%-40s %s\n", n.Path(), doc.Label(n))
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(doc.Root())
	}
	st := doc.Stats()
	fmt.Fprintf(stdout, "\nscheme=%s elements=%d depth=%d max_fanout=%d leaves=%d max_label_bits=%d\n",
		doc.SchemeName(), st.Elements, st.MaxDepth, st.MaxFanout, st.Leaves, doc.MaxLabelBits())
	return nil
}
