// Command labelload is a load generator for labeld. It loads a synthetic
// bookstore document, then drives the server with a mixed workload: worker
// goroutines issue XPath queries and label-relation probes while a
// configurable fraction of operations are order-sensitive inserts. It
// reports throughput, latency percentiles, and the server-side cache hit
// rate and relabel totals — the dynamic-update cost metric the paper
// optimizes.
//
// Every operation carries an X-Trace-Id of the form <run>-w<worker>-<op>,
// so any latency outlier in the report can be looked up in the server's
// /debug/traces buffer for a span-level breakdown.
//
// Usage:
//
//	labelload -addr http://127.0.0.1:8080 -workers 8 -ops 500 -write-ratio 0.05
//	labelload -addr http://primary:8080 -replicas http://replica1:8081,http://replica2:8082
//	labelload -cluster http://node1:8080,http://node2:8081
//
// With -replicas the load generator uses the replica-aware routed client:
// inserts go to the primary, queries round-robin across the replicas with
// stale answers retried on the primary, and the report breaks latency down
// per target so replica lag and fallback cost are visible. With -cluster it
// instead discovers the primary and replicas from the cluster's GET
// /topology and keeps re-reading it in the background, so a failover
// mid-run re-points writes at the promoted successor.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"primelabel/internal/buildinfo"
	"primelabel/internal/hist"
	"primelabel/internal/server/api"
	"primelabel/internal/server/client"
	"primelabel/internal/server/trace"
)

// queryMix is the rotating set of read operations each worker cycles
// through; the mix covers exact paths, descendant scans, positional steps,
// and order axes so both the cache and the structural-join planner see
// traffic.
var queryMix = []string{
	"//book",
	"//title",
	"/store/shelf[1]/book",
	"//book/price",
	"/store/shelf[2]//title",
	"/store/shelf[1]/book[1]/following-sibling::book",
}

func buildStore(shelves, books int) string {
	var b strings.Builder
	b.WriteString("<store>")
	for s := 0; s < shelves; s++ {
		b.WriteString("<shelf>")
		for i := 0; i < books; i++ {
			b.WriteString("<book><title>t</title><price>p</price></book>")
		}
		b.WriteString("</shelf>")
	}
	b.WriteString("</store>")
	return b.String()
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "labelload:", err)
		os.Exit(1)
	}
}

// report renders one latency histogram line: count plus interpolated
// percentiles from the same fixed-bucket histogram type the server exposes
// on /metrics, so labelload's numbers and the server's stage histograms are
// directly comparable.
func report(stdout io.Writer, kind string, h *hist.Histogram, max time.Duration) {
	snap := h.Snapshot()
	if snap.Count == 0 {
		return
	}
	fmt.Fprintf(stdout, "%-8s %6d ops  p50 %v  p95 %v  p99 %v  max %v\n",
		kind, snap.Count,
		snap.Quantile(0.50).Round(time.Microsecond),
		snap.Quantile(0.95).Round(time.Microsecond),
		snap.Quantile(0.99).Round(time.Microsecond),
		max.Round(time.Microsecond))
}

// sampleExplain measures the observability tax: it runs n queries from the
// mix with ?explain=1 and the same n without, prints one profile per distinct
// query shape, and reports p50/p95 for both modes side by side. The paired
// runs interleave (off, on, off, on, ...) so cache warm-up and background
// noise hit both modes equally.
func sampleExplain(stdout io.Writer, c *client.Routed, doc, runID string, n int) error {
	offHist, onHist := hist.NewDefault(), hist.NewDefault()
	var offMax, onMax time.Duration
	seen := make(map[string]bool)
	fmt.Fprintf(stdout, "explain sample (%d queries per mode):\n", n)
	for i := 0; i < n; i++ {
		q := queryMix[i%len(queryMix)]
		tc := c.WithTraceID(fmt.Sprintf("%s-explain-%d", runID, i))

		t0 := time.Now()
		if _, err := tc.Query(doc, q); err != nil {
			return fmt.Errorf("explain sample (plain) %q: %w", q, err)
		}
		d := time.Since(t0)
		offHist.Observe(d)
		if d > offMax {
			offMax = d
		}

		t0 = time.Now()
		resp, err := tc.QueryExplain(doc, q)
		if err != nil {
			return fmt.Errorf("explain sample %q: %w", q, err)
		}
		d = time.Since(t0)
		onHist.Observe(d)
		if d > onMax {
			onMax = d
		}

		if ex := resp.Explain; ex != nil && !seen[ex.Shape] {
			seen[ex.Shape] = true
			printProfile(stdout, q, ex)
		}
	}
	report(stdout, "explain=0", offHist, offMax)
	report(stdout, "explain=1", onHist, onMax)
	off, on := offHist.Snapshot(), onHist.Snapshot()
	fmt.Fprintf(stdout, "explain overhead: p50 %+v  p95 %+v\n",
		(on.Quantile(0.50) - off.Quantile(0.50)).Round(time.Microsecond),
		(on.Quantile(0.95) - off.Quantile(0.95)).Round(time.Microsecond))
	return nil
}

// printProfile renders one query's explain profile compactly: the planner
// summary line, then one line per axis step and per recorded stage timing.
func printProfile(stdout io.Writer, q string, ex *api.QueryExplain) {
	fmt.Fprintf(stdout, "  %s\n    shape %s  backend %s  cache_hit %v  parallel %v",
		q, ex.Shape, ex.Backend, ex.CacheHit, ex.Parallel)
	if ex.Shards > 0 {
		fmt.Fprintf(stdout, " (shards %d)", ex.Shards)
	}
	fmt.Fprintf(stdout, "  candidates %d", ex.Candidates)
	if ex.MaxLabelBits > 0 {
		fmt.Fprintf(stdout, "  max_label_bits %d", ex.MaxLabelBits)
	}
	fmt.Fprintln(stdout)
	for _, st := range ex.Steps {
		fmt.Fprintf(stdout, "    step %s::%s plan %s candidates %d pairs %d emitted %d\n",
			st.Axis, st.Name, st.JoinPlan, st.Candidates, st.Pairs, st.Emitted)
	}
	if fp := ex.Fastpath; fp != nil {
		fmt.Fprintf(stdout, "    fastpath: prefilter_rejects %d exact_u64 %d exact_big %d\n",
			fp.PrefilterRejects, fp.ExactU64, fp.ExactBig)
	}
	for _, sg := range ex.Stages {
		fmt.Fprintf(stdout, "    stage %s %.3fms\n", sg.Stage, sg.DurationMS)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("labelload", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "labeld base URL (the primary when -replicas is set)")
	replicas := fs.String("replicas", "", "comma-separated read-replica base URLs; queries round-robin across them with stale reads retried on the primary")
	cluster := fs.String("cluster", "", "comma-separated cluster seed URLs: discover the primary and replicas from GET /topology (overrides -addr/-replicas) and keep re-reading it, so the workload follows a failover")
	doc := fs.String("doc", "loadtest", "document name to create and drive")
	workers := fs.Int("workers", 8, "concurrent workers")
	ops := fs.Int("ops", 400, "operations per worker")
	writeRatio := fs.Float64("write-ratio", 0.05, "fraction of operations that are inserts")
	batch := fs.Int("batch", 1, "inserts per write operation; >1 sends them as one batch update request")
	shelves := fs.Int("shelves", 4, "shelves in the generated document")
	books := fs.Int("books", 25, "books per shelf in the generated document")
	scheme := fs.String("scheme", "prime", "labeling scheme for the document")
	explainSample := fs.Int("explain-sample", 0, "after the workload, run N queries with ?explain=1 (and N without), print their profiles, and report the p50/p95 explain overhead")
	countOnly := fs.Bool("count-only", false, "issue count-mode queries: the server returns only result counts, never materializing node refs")
	stream := fs.Bool("stream", false, "issue streamed queries: results arrive as NDJSON chunks via POST /docs/{name}/query/stream")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *countOnly && *stream {
		return fmt.Errorf("-count-only and -stream are mutually exclusive")
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("labelload"))
		return nil
	}
	if *workers < 1 || *ops < 1 {
		return fmt.Errorf("workers and ops must be positive")
	}

	var replicaList []string
	if *replicas != "" {
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				replicaList = append(replicaList, u)
			}
		}
	}

	// With no -replicas this routes everything to -addr, so the single-node
	// path is unchanged; with replicas, queries fan out and each target gets
	// its own latency histogram via the observer. With -cluster the routing
	// table comes from the cluster's own topology and refreshes in the
	// background, so a mid-run failover re-points writes at the successor.
	var c *client.Routed
	if *cluster != "" {
		var seeds []string
		for _, u := range strings.Split(*cluster, ",") {
			if u = strings.TrimSpace(u); u != "" {
				seeds = append(seeds, u)
			}
		}
		var err error
		if c, err = client.NewDiscovered(seeds, nil); err != nil {
			return fmt.Errorf("cluster discovery: %w", err)
		}
		stop := c.AutoRefresh(2 * time.Second)
		defer stop()
		fmt.Fprintf(stdout, "discovered cluster targets: %s\n", strings.Join(c.Targets(), ", "))
	} else {
		c = client.NewRouted(*addr, replicaList, nil)
	}
	type targetStat struct {
		hist *hist.Histogram
		mu   sync.Mutex
		max  time.Duration
		errs int
	}
	// Targets can grow mid-run (a topology refresh may surface nodes that
	// were not in the initial table), so stats are created on first sight.
	var targetMu sync.Mutex
	perTarget := make(map[string]*targetStat)
	statFor := func(target string) *targetStat {
		targetMu.Lock()
		defer targetMu.Unlock()
		st := perTarget[target]
		if st == nil {
			st = &targetStat{hist: hist.NewDefault()}
			perTarget[target] = st
		}
		return st
	}
	for _, t := range c.Targets() {
		statFor(t)
	}
	perTargetReport := len(replicaList) > 0 || *cluster != ""
	if perTargetReport {
		c.SetObserver(func(target, op string, d time.Duration, err error) {
			st := statFor(target)
			st.hist.Observe(d)
			st.mu.Lock()
			if d > st.max {
				st.max = d
			}
			if err != nil {
				st.errs++
			}
			st.mu.Unlock()
		})
	}
	runID := trace.GenID()
	info, err := c.WithTraceID(runID+"-load").Load(*doc, api.LoadRequest{
		XML:        buildStore(*shelves, *books),
		Scheme:     *scheme,
		TrackOrder: true,
	})
	if err != nil {
		return fmt.Errorf("load document: %w", err)
	}
	fmt.Fprintf(stdout, "loaded %q: %d elements, scheme %s, max label %d bits\n",
		info.Name, info.Elements, info.Scheme, info.MaxLabelBits)
	fmt.Fprintf(stdout, "trace run id %s (look up ops at /debug/traces)\n", runID)

	// Every writeEvery-th operation is an insert between existing siblings
	// — the paper's worst case for order maintenance.
	writeEvery := 0
	if *writeRatio > 0 {
		writeEvery = int(1 / *writeRatio)
	}

	// Shared histograms: Observe is atomic, so workers record concurrently.
	queryHist := hist.NewDefault()
	insertHist := hist.NewDefault()

	type result struct {
		queries   int
		inserts   int
		queryMax  time.Duration
		insertMax time.Duration
		err       error
	}
	results := make([]result, *workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			for i := 0; i < *ops; i++ {
				tc := c.WithTraceID(fmt.Sprintf("%s-w%d-%d", runID, w, i))
				t0 := time.Now()
				var err error
				if writeEvery > 0 && i%writeEvery == writeEvery-1 {
					// Always insert into the last shelf: its document-order
					// row id is unaffected by the new rows (they all land
					// inside its own subtree), so the id stays valid across
					// generations without re-resolving it — and within a
					// batch, so every op can name the same parent.
					shelf := 1 + (*shelves-1)*(1+*books*3)
					if *batch > 1 {
						breq := api.BatchUpdateRequest{Ops: make([]api.UpdateRequest, *batch)}
						for k := range breq.Ops {
							breq.Ops[k] = api.UpdateRequest{Op: api.OpInsert, Parent: shelf, Index: 0, Tag: "book"}
						}
						var bresp api.BatchUpdateResponse
						bresp, err = tc.UpdateBatch(*doc, breq)
						if err == nil && bresp.Failed >= 0 {
							err = fmt.Errorf("batch stopped at op %d: %s",
								bresp.Failed, bresp.Results[bresp.Failed].Error)
						}
						res.inserts += *batch
					} else {
						_, err = tc.Insert(*doc, shelf, 0, "book")
						res.inserts++
					}
					d := time.Since(t0)
					insertHist.Observe(d)
					if d > res.insertMax {
						res.insertMax = d
					}
				} else {
					q := queryMix[(w+i)%len(queryMix)]
					switch {
					case *countOnly:
						_, err = tc.QueryCount(*doc, q)
					case *stream:
						_, err = tc.QueryStream(*doc, q, func(api.StreamChunk) error { return nil })
					default:
						_, err = tc.Query(*doc, q)
					}
					d := time.Since(t0)
					queryHist.Observe(d)
					if d > res.queryMax {
						res.queryMax = d
					}
					res.queries++
				}
				if err != nil {
					res.err = fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	queries, inserts := 0, 0
	var queryMax, insertMax time.Duration
	for i := range results {
		if results[i].err != nil {
			return results[i].err
		}
		queries += results[i].queries
		inserts += results[i].inserts
		if results[i].queryMax > queryMax {
			queryMax = results[i].queryMax
		}
		if results[i].insertMax > insertMax {
			insertMax = results[i].insertMax
		}
	}
	total := queries + inserts

	fmt.Fprintf(stdout, "%d ops (%d queries, %d inserts) in %v: %.0f ops/s\n",
		total, queries, inserts, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	report(stdout, "queries", queryHist, queryMax)
	report(stdout, "inserts", insertHist, insertMax)

	if perTargetReport {
		fmt.Fprintln(stdout, "per-target latency (replica errors fall back to the primary):")
		targetMu.Lock()
		seen := make([]string, 0, len(perTarget))
		for tgt := range perTarget {
			seen = append(seen, tgt)
		}
		targetMu.Unlock()
		sort.Strings(seen)
		for _, tgt := range seen {
			st := statFor(tgt)
			st.mu.Lock()
			max, errs := st.max, st.errs
			st.mu.Unlock()
			snap := st.hist.Snapshot()
			if snap.Count == 0 {
				fmt.Fprintf(stdout, "  %s: no requests\n", tgt)
				continue
			}
			fmt.Fprintf(stdout, "  %s: %d reqs  p50 %v  p95 %v  p99 %v  max %v  errors %d\n",
				tgt, snap.Count,
				snap.Quantile(0.50).Round(time.Microsecond),
				snap.Quantile(0.95).Round(time.Microsecond),
				snap.Quantile(0.99).Round(time.Microsecond),
				max.Round(time.Microsecond), errs)
		}
	}

	if *explainSample > 0 {
		if err := sampleExplain(stdout, c, *doc, runID, *explainSample); err != nil {
			return err
		}
	}

	final, err := c.Info(*doc)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "document now at generation %d; %d nodes relabeled by %d inserts\n",
		final.Generation, final.Relabeled, inserts)
	if metrics, err := c.Metrics(); err == nil {
		for _, line := range strings.Split(metrics, "\n") {
			if strings.HasPrefix(line, "labeld_query_cache_hit_rate ") {
				fmt.Fprintf(stdout, "server cache hit rate: %s\n",
					strings.TrimPrefix(line, "labeld_query_cache_hit_rate "))
			}
		}
	}
	return nil
}
