package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"primelabel/internal/server"
)

func TestRunAgainstInProcessServer(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	var out strings.Builder
	err = run([]string{
		"-addr", "http://" + addr,
		"-workers", "4", "-ops", "30",
		"-shelves", "2", "-books", "5",
		"-write-ratio", "0.1",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"loaded \"loadtest\"", "ops/s", "p50", "trace run id", "relabeled"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// 4 workers x 30 ops at ratio 0.1 -> every 10th op is an insert.
	if !strings.Contains(text, "12 inserts") {
		t.Errorf("expected 12 inserts:\n%s", text)
	}
	info, err := srv.Store().Info("loadtest")
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 12 {
		t.Errorf("generation = %d, want 12", info.Generation)
	}
}

func TestRunReadOnly(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	var out strings.Builder
	err = run([]string{
		"-addr", "http://" + addr,
		"-doc", "ro", "-workers", "2", "-ops", "12",
		"-write-ratio", "0",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "0 inserts") {
		t.Errorf("expected read-only run:\n%s", out.String())
	}
	info, err := srv.Store().Info("ro")
	if err != nil || info.Generation != 0 {
		t.Fatalf("read-only run mutated the document: %+v, %v", info, err)
	}
}

// TestRunExplainSample checks the -explain-sample report: profiles printed
// for the sampled shapes and the paired overhead percentiles rendered.
func TestRunExplainSample(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	var out strings.Builder
	err = run([]string{
		"-addr", "http://" + addr,
		"-doc", "exp", "-workers", "2", "-ops", "10",
		"-write-ratio", "0",
		"-explain-sample", "8",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	// The workload warmed the cache, so the sampled profiles are cache-hit
	// profiles: planner summary present, no step detail.
	for _, want := range []string{
		"explain sample (8 queries per mode):",
		"backend prime",
		"cache_hit true",
		"explain=0",
		"explain=1",
		"explain overhead: p50",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Sampling 8 queries cycles the 6-shape mix, so at least 6 distinct
	// profiles print — one per shape, not one per query.
	if n := strings.Count(text, "shape "); n != len(queryMix) {
		t.Errorf("printed %d profiles, want %d (one per shape):\n%s", n, len(queryMix), text)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run([]string{"-workers", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("workers=0 accepted")
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1"}, &strings.Builder{}); err == nil {
		t.Fatal("unreachable server accepted")
	}
}
