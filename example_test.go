package primelabel_test

import (
	"fmt"
	"log"

	"primelabel"
)

// The paper's running example: label a document, test ancestry by
// divisibility, and insert a node without relabeling anything.
func ExampleLoadString() {
	doc, err := primelabel.LoadString(
		`<paper><title/><author>Tom</author><author>John</author></paper>`,
		primelabel.Config{Scheme: primelabel.Prime, TrackOrder: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	authors := doc.Find("author")
	fmt.Println(doc.IsAncestor(doc.Root(), authors[0]))
	fmt.Println(doc.IsAncestor(authors[0], authors[1]))
	// Output:
	// true
	// false
}

func ExampleDocument_Query() {
	doc, err := primelabel.LoadString(
		`<library>
			<book id="b1"><title>Dune</title></book>
			<book id="b2"><title>Foundation</title></book>
		</library>`,
		primelabel.Config{Scheme: primelabel.Prime, TrackOrder: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := doc.Query("//book[@id='b2']/title")
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Println(h.Text())
	}
	second, _ := doc.Query("/library/book[2]")
	fmt.Println(len(second))
	// Output:
	// Foundation
	// 1
}

func ExampleDocument_InsertAfter() {
	doc, err := primelabel.LoadString(
		`<list><item>a</item><item>c</item></list>`,
		primelabel.Config{Scheme: primelabel.Prime, TrackOrder: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	items := doc.Find("item")
	before := doc.Label(items[1])
	mid, _, err := doc.InsertAfter(items[0], "item")
	if err != nil {
		log.Fatal(err)
	}
	// Existing labels never change; the new node slots into position 2.
	fmt.Println(doc.Label(items[1]) == before)
	second, _ := doc.Query("/list/item[2]")
	fmt.Println(second[0] == mid)
	// Output:
	// true
	// true
}

func ExampleGenerateDataset() {
	doc, err := primelabel.GenerateDataset("D4", primelabel.Config{
		Scheme:           primelabel.Prime,
		PowerOfTwoLeaves: true,
		ReservedPrimes:   -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := doc.Stats()
	fmt.Println(st.Elements, st.MaxDepth >= 2, st.MaxFanout > 1000)
	// Output:
	// 1110 true true
}

func ExampleDocument_Label() {
	doc, err := primelabel.LoadString(`<r><a><b/></a></r>`, primelabel.Config{})
	if err != nil {
		log.Fatal(err)
	}
	// Top-down prime labels: root = 1, then parent × self down the path.
	fmt.Println(doc.Label(doc.Root()))
	fmt.Println(doc.Label(doc.Find("a")[0]))
	fmt.Println(doc.Label(doc.Find("b")[0]))
	// Output:
	// 1
	// 2
	// 6
}
