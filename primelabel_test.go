package primelabel

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

const libraryXML = `<library>
  <section name="fiction">
    <book id="b1"><title>Dune</title><author>Herbert</author></book>
    <book id="b2"><title>Foundation</title><author>Asimov</author></book>
  </section>
  <section name="poetry">
    <book id="b3"><title>Leaves</title></book>
  </section>
</library>`

func loadLibrary(t *testing.T, cfg Config) *Document {
	t.Helper()
	doc, err := LoadString(libraryXML, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestLoadAndBasics(t *testing.T) {
	doc := loadLibrary(t, Config{Scheme: Prime, TrackOrder: true})
	if doc.SchemeName() != "prime" {
		t.Errorf("SchemeName = %q", doc.SchemeName())
	}
	st := doc.Stats()
	if st.Elements != 11 {
		t.Errorf("Elements = %d, want 11", st.Elements)
	}
	if doc.Root().Name() != "library" {
		t.Errorf("Root = %s", doc.Root().Name())
	}
	books := doc.Find("book")
	if len(books) != 3 {
		t.Fatalf("Find(book) = %d", len(books))
	}
	if v, ok := books[0].Attr("id"); !ok || v != "b1" {
		t.Errorf("book attr = %q,%v", v, ok)
	}
	if books[0].Path() != "library/section/book" {
		t.Errorf("Path = %q", books[0].Path())
	}
}

func TestAllSchemesLoadAndAnswerAncestry(t *testing.T) {
	for _, kind := range Schemes() {
		cfg := Config{Scheme: kind, TrackOrder: true, OrderPreserving: true}
		doc, err := LoadString(libraryXML, cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		sections := doc.Find("section")
		books := doc.Find("book")
		if !doc.IsAncestor(doc.Root(), books[0]) {
			t.Errorf("%s: root should be ancestor of book", kind)
		}
		if !doc.IsParent(sections[0], books[0]) {
			t.Errorf("%s: section should be parent of book", kind)
		}
		if doc.IsAncestor(books[0], sections[0]) {
			t.Errorf("%s: book is not an ancestor of section", kind)
		}
		if doc.IsAncestor(books[0], books[0]) {
			t.Errorf("%s: node is not its own ancestor", kind)
		}
		if doc.Label(books[0]) == "" {
			t.Errorf("%s: empty label render", kind)
		}
		if doc.MaxLabelBits() <= 0 {
			t.Errorf("%s: MaxLabelBits = %d", kind, doc.MaxLabelBits())
		}
	}
}

func TestQueryAndOrder(t *testing.T) {
	doc := loadLibrary(t, Config{Scheme: Prime, TrackOrder: true})
	titles, err := doc.Query("/library//title")
	if err != nil {
		t.Fatal(err)
	}
	if len(titles) != 3 || titles[0].Text() != "Dune" {
		t.Fatalf("titles = %v", titles)
	}
	second, err := doc.Query("//book[2]")
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 1 {
		t.Fatalf("book[2] = %d nodes", len(second))
	}
	if v, _ := second[0].Attr("id"); v != "b2" {
		t.Errorf("book[2] id = %s", v)
	}
	following, err := doc.Query("//book[1]//following::book")
	if err != nil {
		t.Fatal(err)
	}
	if len(following) != 2 {
		t.Errorf("following books = %d, want 2", len(following))
	}
	books := doc.Find("book")
	if before, err := doc.Before(books[0], books[2]); err != nil || !before {
		t.Errorf("Before = %v,%v", before, err)
	}
}

func TestDynamicUpdates(t *testing.T) {
	doc := loadLibrary(t, Config{Scheme: Prime, TrackOrder: true, PowerOfTwoLeaves: true})
	books := doc.Find("book")
	fixed := map[Node]string{}
	for _, b := range books {
		fixed[b] = doc.Label(b)
	}
	newBook, count, err := doc.InsertAfter(books[0], "book")
	if err != nil {
		t.Fatal(err)
	}
	if count > 4 {
		t.Errorf("insert wrote %d labels, want O(1)", count)
	}
	for b, l := range fixed {
		if doc.Label(b) != l {
			t.Errorf("existing label changed: %s", b.Path())
		}
	}
	// New node participates in queries and order.
	all, err := doc.Query("//book")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("books after insert = %d", len(all))
	}
	if before, err := doc.Before(books[0], newBook); err != nil || !before {
		t.Errorf("new book order wrong: %v %v", before, err)
	}
	if before, err := doc.Before(newBook, books[1]); err != nil || !before {
		t.Errorf("new book order wrong vs b2: %v %v", before, err)
	}

	// Wrap and delete.
	wrapper, _, err := doc.WrapParent(books[2], "archive")
	if err != nil {
		t.Fatal(err)
	}
	if !doc.IsParent(wrapper, books[2]) {
		t.Error("wrapper not parent after wrap")
	}
	if err := doc.Delete(wrapper); err != nil {
		t.Fatal(err)
	}
	remaining, _ := doc.Query("//book")
	if len(remaining) != 3 {
		t.Errorf("books after delete = %d, want 3", len(remaining))
	}
}

func TestInsertChildAndBefore(t *testing.T) {
	doc := loadLibrary(t, Config{})
	sections := doc.Find("section")
	n, _, err := doc.InsertChild(sections[1], 0, "book")
	if err != nil {
		t.Fatal(err)
	}
	if n.Parent().Name() != "section" {
		t.Error("InsertChild misplaced")
	}
	b3 := doc.Find("book")[2]
	m, _, err := doc.InsertBefore(b3, "pamphlet")
	if err != nil {
		t.Fatal(err)
	}
	if m.IsZero() || m.Parent().Name() != "section" {
		t.Error("InsertBefore misplaced")
	}
	if _, _, err := doc.InsertBefore(doc.Root(), "x"); err == nil {
		t.Error("InsertBefore root should fail")
	}
	if _, _, err := doc.InsertChild(Node{}, 0, "x"); err == nil {
		t.Error("zero parent should fail")
	}
}

func TestLabelRendering(t *testing.T) {
	cases := map[SchemeKind]func(string) bool{
		Prime:           func(s string) bool { return s != "" },
		Interval:        func(s string) bool { return strings.HasPrefix(s, "(") },
		XRel:            func(s string) bool { return strings.HasPrefix(s, "(") },
		Prefix2:         func(s string) bool { return strings.Trim(s, "01") == "" },
		Dewey:           func(s string) bool { return strings.Contains(s, ".") || s != "" },
		Float:           func(s string) bool { return strings.HasPrefix(s, "(") },
		PrimeBottomUp:   func(s string) bool { return s != "" },
		PrimeDecomposed: func(s string) bool { return s != "" },
	}
	for kind, check := range cases {
		doc, err := LoadString(libraryXML, Config{Scheme: kind})
		if err != nil {
			t.Fatal(err)
		}
		lbl := doc.Label(doc.Find("book")[0])
		if !check(lbl) {
			t.Errorf("%s: label render %q unexpected", kind, lbl)
		}
	}
	// Prime self-label accessor.
	doc, _ := LoadString(libraryXML, Config{Scheme: Prime})
	if doc.SelfLabel(doc.Find("book")[0]) == "" {
		t.Error("SelfLabel empty for prime scheme")
	}
	if doc.SelfLabel(Node{}) != "" {
		t.Error("SelfLabel of zero node should be empty")
	}
}

func TestZeroNodeSafety(t *testing.T) {
	doc := loadLibrary(t, Config{})
	var z Node
	if !z.IsZero() || z.Name() != "" || z.Text() != "" || z.Path() != "" || z.Depth() != 0 {
		t.Error("zero node accessors should be inert")
	}
	if doc.IsAncestor(z, doc.Root()) || doc.IsParent(z, doc.Root()) {
		t.Error("zero node relations should be false")
	}
	if _, err := doc.Before(z, doc.Root()); err == nil {
		t.Error("Before with zero node should fail")
	}
	if doc.LabelBits(z) != 0 || doc.Label(z) != "" {
		t.Error("zero node label should be empty")
	}
	if err := doc.Delete(z); err == nil {
		t.Error("Delete of zero node should fail")
	}
	if _, _, err := doc.WrapParent(z, "x"); err == nil {
		t.Error("WrapParent of zero node should fail")
	}
	if _, ok := z.Attr("x"); ok {
		t.Error("zero node attr")
	}
	if z.Children() != nil || !z.Parent().IsZero() {
		t.Error("zero node family")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := LoadString("<a><b></a>", Config{}); err == nil {
		t.Error("malformed XML should fail")
	}
	if _, err := LoadString("<a/>", Config{Scheme: "bogus"}); err == nil {
		t.Error("unknown scheme should fail")
	}
	doc, _ := LoadString("<a/>", Config{})
	if _, err := doc.Query("///"); err == nil {
		t.Error("bad query should fail")
	}
}

func TestRoundTripXML(t *testing.T) {
	doc := loadLibrary(t, Config{})
	out := doc.XML()
	back, err := LoadString(out, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != doc.Stats() {
		t.Error("XML round trip changed structure")
	}
	var sb strings.Builder
	if err := doc.WriteXML(&sb, "  "); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<library>") {
		t.Error("WriteXML output wrong")
	}
}

func TestGenerateHelpers(t *testing.T) {
	ids := DatasetIDs()
	if len(ids) != 9 || ids["D8"] == "" {
		t.Fatalf("DatasetIDs = %v", ids)
	}
	d4, err := GenerateDataset("D4", Config{Scheme: Prime, PowerOfTwoLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if d4.Stats().Elements != 1110 {
		t.Errorf("D4 elements = %d", d4.Stats().Elements)
	}
	if _, err := GenerateDataset("D0", Config{}); err == nil {
		t.Error("unknown dataset should fail")
	}

	plays, err := GeneratePlays(3, 2000, 2, Config{Scheme: Prime, TrackOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if plays.Stats().Elements != 2*2000+1 {
		t.Errorf("plays elements = %d", plays.Stats().Elements)
	}
	acts, err := plays.Query("//play//act[2]")
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) == 0 {
		t.Error("no second acts found")
	}

	hamlet, err := GenerateHamlet(Config{Scheme: Prime, TrackOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(hamlet.Find("act")); got != 5 {
		t.Errorf("hamlet acts = %d", got)
	}
}

func TestOrderSensitiveInsertEndToEnd(t *testing.T) {
	// The paper's headline scenario through the public API: insert a second
	// author without relabeling, and have order queries see it.
	src := `<paper><title/><author>Tom</author><author>John</author></paper>`
	doc, err := LoadString(src, Config{Scheme: Prime, TrackOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	authors := doc.Find("author")
	oldLabels := []string{doc.Label(authors[0]), doc.Label(authors[1])}
	mid, _, err := doc.InsertAfter(authors[0], "author")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Label(authors[0]) != oldLabels[0] || doc.Label(authors[1]) != oldLabels[1] {
		t.Error("ordered insert relabeled existing authors")
	}
	got, err := doc.Query("/paper/author[2]")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != mid {
		t.Error("author[2] should be the newly inserted node")
	}
}

func TestSaveAndLoadSaved(t *testing.T) {
	doc := loadLibrary(t, Config{Scheme: Prime, TrackOrder: true, PowerOfTwoLeaves: true})
	books := doc.Find("book")
	if _, _, err := doc.InsertAfter(books[0], "book"); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := doc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSaved(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Same structure, same labels, and updates keep working.
	if back.Stats() != doc.Stats() {
		t.Error("restored stats differ")
	}
	origBooks := doc.Find("book")
	backBooks := back.Find("book")
	for i := range origBooks {
		if doc.Label(origBooks[i]) != back.Label(backBooks[i]) {
			t.Fatalf("label %d differs after restore", i)
		}
	}
	if _, _, err := back.InsertAfter(backBooks[1], "book"); err != nil {
		t.Fatal(err)
	}
	hits, err := back.Query("//book[3]")
	if err != nil || len(hits) != 1 {
		t.Errorf("query after restore: %d hits, err %v", len(hits), err)
	}
	// Baseline schemes round-trip too (the full matrix lives in
	// TestSaveRoundTripAllSchemes); only the static study variants refuse.
	iv := loadLibrary(t, Config{Scheme: Interval})
	if err := iv.Save(&strings.Builder{}); err != nil {
		t.Errorf("interval Save: %v", err)
	}
	bu := loadLibrary(t, Config{Scheme: PrimeBottomUp})
	if err := bu.Save(&strings.Builder{}); !errors.Is(err, ErrUnsupportedPersist) {
		t.Errorf("bottom-up Save = %v, want ErrUnsupportedPersist", err)
	}
	if _, err := LoadSaved(strings.NewReader("junk")); err == nil {
		t.Error("LoadSaved of junk should fail")
	}
}

func TestValidate(t *testing.T) {
	for _, kind := range Schemes() {
		doc, err := LoadString(libraryXML, Config{Scheme: kind, TrackOrder: true, OrderPreserving: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := doc.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	// Validate after churn.
	doc := loadLibrary(t, Config{Scheme: Prime, TrackOrder: true, RecyclePrimes: true})
	for i := 0; i < 30; i++ {
		books := doc.Find("book")
		if _, _, err := doc.InsertAfter(books[i%len(books)], "book"); err != nil {
			t.Fatal(err)
		}
	}
	if err := doc.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	doc := loadLibrary(t, Config{Scheme: Prime, TrackOrder: true})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := doc.Query("//book//following::book"); err != nil {
						errs <- err
						return
					}
				case 1:
					books := doc.Find("book")
					if len(books) > 0 {
						doc.IsAncestor(doc.Root(), books[0])
						_, _ = doc.Before(doc.Root(), books[0])
					}
				case 2:
					books := doc.Find("book")
					if len(books) > 0 {
						if _, _, err := doc.InsertAfter(books[0], "book"); err != nil {
							errs <- err
							return
						}
					}
				default:
					_ = doc.MaxLabelBits()
					_ = doc.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
}
