# Tier-1 verification flow. `make verify` is what CI and pre-merge checks
# run: build, vet, the full test suite, and the test suite again under the
# race detector (the server and primes packages are exercised by
# multi-goroutine tests, so -race is load-bearing, not ceremony).

GO ?= go

.PHONY: build vet test race verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet test race
