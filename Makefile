# Tier-1 verification flow. `make verify` is what CI and pre-merge checks
# run: build, vet, the godoc lint over the server packages, the full test
# suite, the test suite again under the race detector (the server and primes
# packages are exercised by multi-goroutine tests, so -race is load-bearing,
# not ceremony), and a short fuzz pass over the journal record codec — the
# frame scanner is the single parser standing between a crashed process's
# half-written bytes and the recovery path.

GO ?= go

.PHONY: build vet lint test race fuzz verify e2e-replica e2e-cluster bench-update bench-query clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint enforces the godoc contract on the server packages (every exported
# identifier must document its concurrency/durability behavior) and checks
# that docs/LABELING.md has a section for every registered labeling scheme.
lint:
	$(GO) run ./cmd/doccheck -schemes-doc docs/LABELING.md ./internal/server ./internal/server/api ./internal/server/client ./internal/server/persist ./internal/server/replica ./internal/server/trace ./internal/hist ./internal/buildinfo ./internal/labeling/compact ./internal/server/querystats ./internal/server/cluster

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz seeds the journal frame scanner with 10s of random torn/corrupt
# inputs on top of the checked-in corpus, then the streaming frame decoder
# (the replication wire format) with the same treatment.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzJournalFrames -fuzztime 10s ./internal/server/persist
	$(GO) test -run '^$$' -fuzz FuzzStreamFrames -fuzztime 10s ./internal/server/persist
	$(GO) test -run '^$$' -fuzz FuzzExtentJoinParity -fuzztime 10s ./internal/server

# e2e-replica runs the two-node replication suite under the race detector:
# snapshot bootstrap, live journal tailing to parity through an update
# storm, mid-journal resume, compaction-vs-slow-follower re-sync, follower
# crash recovery, forced-disconnect reconnect, and promotion.
e2e-replica:
	$(GO) test -race -count=1 -timeout 300s -run 'TestReplication|TestPromote' ./internal/server
	$(GO) test -race -count=1 -timeout 120s ./internal/server/replica ./internal/server/client

# e2e-cluster runs the three-node cluster matrix under the race detector:
# kill the primary under a client write storm, timeout-driven successor
# self-promotion, divergence-point rejoin of the deposed primary through the
# journal digest probe, stale-epoch stream rejection, and pinned-placement
# write redirects — plus the cluster manager's unit suite (ring placement,
# failover election, fencing takeover detection) and the topology-discovery
# client tests. The matrix dumps follower-side /debug/querystats and
# replication-lag snapshots into cluster-e2e/ (CI uploads them as an
# artifact).
e2e-cluster:
	CLUSTER_E2E_ARTIFACTS=$(CURDIR)/cluster-e2e $(GO) test -race -count=1 -timeout 300s -run 'TestCluster' ./internal/server
	$(GO) test -race -count=1 -timeout 120s ./internal/server/cluster
	$(GO) test -race -count=1 -timeout 120s -run 'TestDiscovered' ./internal/server/client

verify: build vet lint test race fuzz e2e-replica e2e-cluster

# bench-update measures the batched-update pipeline: batch-vs-single insert
# throughput under fsync and incremental-vs-full reindex scaling, written as
# machine-readable JSON to BENCH_update.json. Informational, not a gate —
# CI runs it non-blocking because shared runners make timings noisy.
bench-update:
	BENCH_UPDATE_JSON=$(CURDIR)/BENCH_update.json $(GO) test ./internal/server -run '^TestUpdateBenchReport$$' -v -timeout 900s

# bench-query measures the query path: the fast ancestor test plus parallel
# axis evaluation against the exact sequential baseline, per axis and across
# document sizes, written as machine-readable JSON to BENCH_query.json. Same
# non-gating policy as bench-update.
bench-query:
	BENCH_QUERY_JSON=$(CURDIR)/BENCH_query.json QUERYSTATS_JSON=$(CURDIR)/BENCH_querystats.json $(GO) test ./internal/server -run '^TestQueryBenchReport$$' -v -timeout 900s

# clean removes build products and stray test data directories.
clean:
	$(GO) clean ./...
	rm -rf cmd/labeld/testdata/data internal/server/persist/testdata/fuzz.tmp cluster-e2e
