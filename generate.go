package primelabel

import (
	"primelabel/internal/datasets"
)

// GenerateDataset builds one of the nine deterministic evaluation datasets
// (D1..D9, shaped per the paper's Table 1) and labels it with cfg. See
// DESIGN.md for what each dataset models.
func GenerateDataset(id string, cfg Config) (*Document, error) {
	spec, err := datasets.ByID(id)
	if err != nil {
		return nil, err
	}
	return fromTree(spec.Gen(), cfg)
}

// DatasetIDs lists the available generated datasets with their topics.
func DatasetIDs() map[string]string {
	out := make(map[string]string)
	for _, s := range datasets.All() {
		out[s.ID] = s.Topic
	}
	return out
}

// GeneratePlays builds a deterministic corpus of Shakespeare-style plays
// with the given total element count, replicated `replicas` times (the
// paper's query corpus uses its D8 dataset replicated 5×).
func GeneratePlays(seed int64, elements, replicas int, cfg Config) (*Document, error) {
	doc := datasets.PlayCorpus(seed, elements)
	if replicas > 1 {
		doc = datasets.Replicate(doc, replicas)
	}
	return fromTree(doc, cfg)
}

// GenerateHamlet builds the five-act play document used by the paper's
// order-sensitive update experiment.
func GenerateHamlet(cfg Config) (*Document, error) {
	return fromTree(datasets.Hamlet(), cfg)
}
